#include "partition/block_tree.h"

#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.h"

namespace fc::part {

BlockTree::BlockTree(std::uint32_t num_points)
{
    reset(num_points);
}

void
BlockTree::reset(std::uint32_t num_points)
{
    nodes_.clear();
    leaves_.clear();
    order_.resize(num_points);
    std::iota(order_.begin(), order_.end(), 0u);
}

NodeIdx
BlockTree::addNode(const BlockNode &node)
{
    nodes_.push_back(node);
    return static_cast<NodeIdx>(nodes_.size() - 1);
}

void
BlockTree::rebuildLeafList()
{
    leaves_.clear();
    if (nodes_.empty())
        return;
    // Stackless pre-order walk via parent links (left before right —
    // DFT memory order): descend leftmost, then climb until a right
    // sibling remains unvisited. No auxiliary stack means the warm
    // partitionInto path stays heap-free.
    NodeIdx cur = 0;
    for (;;) {
        while (!nodes_[cur].isLeaf())
            cur = nodes_[cur].left;
        leaves_.push_back(cur);
        NodeIdx parent = nodes_[cur].parent;
        while (parent != kNoNode && (nodes_[parent].right == cur ||
                                     nodes_[parent].right == kNoNode)) {
            cur = parent;
            parent = nodes_[cur].parent;
        }
        if (parent == kNoNode)
            return;
        cur = nodes_[parent].right;
    }
}

NodeIdx
BlockTree::searchSpaceNode(NodeIdx leaf) const
{
    const BlockNode &n = nodes_[leaf];
    if (n.depth <= 1 || n.parent == kNoNode)
        return leaf;
    return n.parent;
}

std::uint16_t
BlockTree::maxDepth() const
{
    std::uint16_t d = 0;
    for (const NodeIdx leaf : leaves_)
        d = std::max(d, nodes_[leaf].depth);
    return d;
}

std::uint32_t
BlockTree::maxLeafSize() const
{
    std::uint32_t m = 0;
    for (const NodeIdx leaf : leaves_)
        m = std::max(m, nodes_[leaf].size());
    return m;
}

std::uint32_t
BlockTree::minLeafSize() const
{
    std::uint32_t m = numPoints();
    for (const NodeIdx leaf : leaves_)
        m = std::min(m, nodes_[leaf].size());
    return leaves_.empty() ? 0 : m;
}

double
BlockTree::leafSizeCv() const
{
    if (leaves_.empty())
        return 0.0;
    double sum = 0.0, sum_sq = 0.0;
    for (const NodeIdx leaf : leaves_) {
        const double s = nodes_[leaf].size();
        sum += s;
        sum_sq += s * s;
    }
    const double n = static_cast<double>(leaves_.size());
    const double mean = sum / n;
    if (mean <= 0.0)
        return 0.0;
    const double var = std::max(0.0, sum_sq / n - mean * mean);
    return std::sqrt(var) / mean;
}

void
BlockTree::validate() const
{
    fc_assert(!nodes_.empty(), "empty tree");
    const BlockNode &root = nodes_[0];
    fc_assert(root.begin == 0 && root.end == numPoints(),
              "root range [%u,%u) does not span %u points", root.begin,
              root.end, numPoints());

    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const BlockNode &n = nodes_[i];
        fc_assert(n.begin <= n.end, "node %zu inverted range", i);
        if (!n.isLeaf()) {
            fc_assert(n.right != kNoNode,
                      "node %zu has left child but no right child", i);
            const BlockNode &l = nodes_[n.left];
            const BlockNode &r = nodes_[n.right];
            fc_assert(l.begin == n.begin && r.end == n.end &&
                          l.end == r.begin,
                      "node %zu children do not tile the parent range",
                      i);
            fc_assert(l.parent == static_cast<NodeIdx>(i) &&
                          r.parent == static_cast<NodeIdx>(i),
                      "node %zu children have wrong parent links", i);
            fc_assert(l.depth == n.depth + 1 && r.depth == n.depth + 1,
                      "node %zu children have wrong depth", i);
        }
    }

    // Leaves must tile [0, n) in DFT order.
    std::uint32_t cursor = 0;
    for (const NodeIdx leaf : leaves_) {
        const BlockNode &n = nodes_[leaf];
        fc_assert(n.isLeaf(), "leaf list contains non-leaf node %d",
                  leaf);
        fc_assert(n.begin == cursor,
                  "leaf %d begins at %u, expected %u (not DFT-ordered)",
                  leaf, n.begin, cursor);
        cursor = n.end;
    }
    fc_assert(cursor == numPoints(), "leaves cover %u of %u points",
              cursor, numPoints());

    // The order must be a permutation.
    std::vector<bool> seen(order_.size(), false);
    for (const PointIdx idx : order_) {
        fc_assert(idx < order_.size(), "order entry %u out of range",
                  idx);
        fc_assert(!seen[idx], "order entry %u duplicated", idx);
        seen[idx] = true;
    }
}

std::string
BlockTree::summary() const
{
    std::ostringstream os;
    os << "BlockTree: " << numPoints() << " points, " << nodes_.size()
       << " nodes, " << leaves_.size() << " leaves, max depth "
       << maxDepth() << ", leaf sizes [" << minLeafSize() << ", "
       << maxLeafSize() << "], cv " << leafSizeCv();
    return os.str();
}

} // namespace fc::part
