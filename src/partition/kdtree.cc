#include "partition/kdtree.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/parallel.h"
#include "core/workspace.h"
#include "partition/detail.h"

namespace fc::part {

namespace {

using detail::SplitRec;

/** Merge-sort comparator count for n elements: n * ceil(log2 n). */
std::uint64_t
sortCost(std::uint32_t n)
{
    if (n <= 1)
        return 0;
    std::uint64_t levels = 0;
    std::uint32_t v = n - 1;
    while (v > 0) {
        ++levels;
        v >>= 1;
    }
    return static_cast<std::uint64_t>(n) * levels;
}

struct Builder
{
    const data::PointCloud &cloud;
    const PartitionConfig &config;
    std::vector<PointIdx> &order;
    core::ThreadPool *pool;
    core::Arena &arena; ///< split records; reclaimed by Arena::reset

    SplitRec *
    build(std::uint32_t begin, std::uint32_t end, std::uint16_t depth,
          int dim_counter)
    {
        const std::uint32_t size = end - begin;
        if (size <= config.threshold || depth >= config.max_depth ||
            size < 2) {
            return nullptr;
        }

        SplitRec *rec = arena.create<SplitRec>();
        const int dim = dim_counter % 3;
        // Median split: the hardware performs a full merge sort per
        // node (PointAcc-style sorter, reused by Crescent); we realize
        // it with a median selection but charge the full sort cost.
        // Small slices use nth_element; root-scale slices run the
        // parallel quickselect over chunked splitRange, so even the
        // first (serial-prefix) selections use the pool. Subtree
        // tasks touch disjoint order slices, so the selection is safe
        // to run concurrently across siblings.
        const std::uint32_t median = begin + size / 2;
        detail::medianSplit(order, cloud, begin, end, dim, pool,
                            &arena);
        ++rec->local.num_sorts;
        rec->local.sort_compares += sortCost(size);
        rec->local.elements_traversed += size;
        ++rec->local.num_splits;

        rec->split = median;
        rec->dim = static_cast<std::int8_t>(dim);
        rec->value = cloud[order[median]][dim];

        const std::uint16_t child_depth =
            static_cast<std::uint16_t>(depth + 1);
        detail::forkJoin(
            pool, size,
            [this, begin, median, child_depth, dim_counter, rec] {
                rec->left =
                    build(begin, median, child_depth, dim_counter + 1);
            },
            [this, median, end, child_depth, dim_counter, rec] {
                rec->right =
                    build(median, end, child_depth, dim_counter + 1);
            });
        return rec;
    }
};

} // namespace

void
KdTreePartitioner::partitionInto(const data::PointCloud &cloud,
                                 const PartitionConfig &config,
                                 core::ThreadPool *pool,
                                 core::Workspace &ws,
                                 PartitionResult &out) const
{
    fc_assert(config.threshold > 0, "threshold must be positive");
    out.method = Method::KdTree;
    out.config = config;
    out.stats = {};
    out.tree.reset(static_cast<std::uint32_t>(cloud.size()));

    BlockNode root;
    root.begin = 0;
    root.end = static_cast<std::uint32_t>(cloud.size());
    out.tree.addNode(root);

    Builder builder{cloud, config, out.tree.order(), pool, ws.arena()};
    const SplitRec *root_rec =
        builder.build(0, static_cast<std::uint32_t>(cloud.size()), 0,
                      config.first_dim);
    detail::replaySplits(out.tree, 0, root_rec, out.stats);

    out.tree.rebuildLeafList();
    detail::computeBounds(out.tree, cloud);

    // KD-tree sorts are exclusive and serial: every internal node is
    // its own pass (Fig. 5 left). traversal_passes therefore equals
    // the number of sorts.
    out.stats.traversal_passes =
        static_cast<std::uint32_t>(out.stats.num_sorts);
}

} // namespace fc::part
