#include "partition/kdtree.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "partition/detail.h"

namespace fc::part {

namespace {

/** Merge-sort comparator count for n elements: n * ceil(log2 n). */
std::uint64_t
sortCost(std::uint32_t n)
{
    if (n <= 1)
        return 0;
    std::uint64_t levels = 0;
    std::uint32_t v = n - 1;
    while (v > 0) {
        ++levels;
        v >>= 1;
    }
    return static_cast<std::uint64_t>(n) * levels;
}

struct Builder
{
    const data::PointCloud &cloud;
    const PartitionConfig &config;
    BlockTree &tree;
    PartitionStats &stats;

    void
    build(NodeIdx node_idx, int dim_counter)
    {
        const std::uint32_t begin = tree.node(node_idx).begin;
        const std::uint32_t end = tree.node(node_idx).end;
        const std::uint16_t depth = tree.node(node_idx).depth;
        const std::uint32_t size = end - begin;

        if (size <= config.threshold || depth >= config.max_depth ||
            size < 2) {
            return;
        }

        const int dim = dim_counter % 3;
        // Median split: the hardware performs a full merge sort per
        // node (PointAcc-style sorter, reused by Crescent); we realize
        // it with nth_element but charge the full sort cost.
        const std::uint32_t median = begin + size / 2;
        auto first = tree.order().begin() + begin;
        auto nth = tree.order().begin() + median;
        auto last = tree.order().begin() + end;
        std::nth_element(first, nth, last,
                         [&](PointIdx a, PointIdx b) {
                             return cloud[a][dim] < cloud[b][dim];
                         });
        ++stats.num_sorts;
        stats.sort_compares += sortCost(size);
        stats.elements_traversed += size;
        ++stats.num_splits;

        const float split_value = cloud[tree.order()[median]][dim];

        BlockNode left;
        left.begin = begin;
        left.end = median;
        left.parent = node_idx;
        left.depth = static_cast<std::uint16_t>(depth + 1);
        BlockNode right;
        right.begin = median;
        right.end = end;
        right.parent = node_idx;
        right.depth = static_cast<std::uint16_t>(depth + 1);

        const NodeIdx left_idx = tree.addNode(left);
        const NodeIdx right_idx = tree.addNode(right);
        BlockNode &parent = tree.node(node_idx);
        parent.left = left_idx;
        parent.right = right_idx;
        parent.splitDim = static_cast<std::int8_t>(dim);
        parent.splitValue = split_value;

        build(left_idx, dim_counter + 1);
        build(right_idx, dim_counter + 1);
    }
};

} // namespace

PartitionResult
KdTreePartitioner::partition(const data::PointCloud &cloud,
                             const PartitionConfig &config) const
{
    fc_assert(config.threshold > 0, "threshold must be positive");
    PartitionResult result;
    result.method = Method::KdTree;
    result.config = config;
    result.tree = BlockTree(static_cast<std::uint32_t>(cloud.size()));

    BlockNode root;
    root.begin = 0;
    root.end = static_cast<std::uint32_t>(cloud.size());
    result.tree.addNode(root);

    Builder builder{cloud, config, result.tree, result.stats};
    builder.build(0, config.first_dim);

    result.tree.rebuildLeafList();
    detail::computeBounds(result.tree, cloud);

    // KD-tree sorts are exclusive and serial: every internal node is
    // its own pass (Fig. 5 left). traversal_passes therefore equals
    // the number of sorts.
    result.stats.traversal_passes =
        static_cast<std::uint32_t>(result.stats.num_sorts);
    return result;
}

} // namespace fc::part
