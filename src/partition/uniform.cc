#include "partition/uniform.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "partition/detail.h"

namespace fc::part {

namespace {

struct Builder
{
    const data::PointCloud &cloud;
    BlockTree &tree;
    PartitionStats &stats;
    std::uint16_t target_depth;

    /**
     * @p cell is the node's space cell (not the point bounds); splits
     * happen at the cell's spatial midpoint regardless of the data.
     */
    void
    build(NodeIdx node_idx, int dim_counter, Aabb cell)
    {
        const std::uint32_t begin = tree.node(node_idx).begin;
        const std::uint32_t end = tree.node(node_idx).end;
        const std::uint16_t depth = tree.node(node_idx).depth;

        if (depth >= target_depth)
            return;

        const int dim = dim_counter % 3;
        const float mid = cell.midpoint(dim);
        const std::uint32_t split =
            detail::splitRange(tree, cloud, begin, end, dim, mid);
        stats.elements_traversed += end - begin;
        ++stats.num_splits;

        BlockNode left;
        left.begin = begin;
        left.end = split;
        left.parent = node_idx;
        left.depth = static_cast<std::uint16_t>(depth + 1);
        BlockNode right;
        right.begin = split;
        right.end = end;
        right.parent = node_idx;
        right.depth = static_cast<std::uint16_t>(depth + 1);

        const NodeIdx left_idx = tree.addNode(left);
        const NodeIdx right_idx = tree.addNode(right);
        BlockNode &parent = tree.node(node_idx);
        parent.left = left_idx;
        parent.right = right_idx;
        parent.splitDim = static_cast<std::int8_t>(dim);
        parent.splitValue = mid;

        Aabb left_cell = cell;
        left_cell.hi.at(dim) = mid;
        Aabb right_cell = cell;
        right_cell.lo.at(dim) = mid;

        build(left_idx, dim_counter + 1, left_cell);
        build(right_idx, dim_counter + 1, right_cell);
    }
};

} // namespace

PartitionResult
UniformPartitioner::partition(const data::PointCloud &cloud,
                              const PartitionConfig &config,
                              core::ThreadPool *) const
{
    // The fixed-depth space bisection is cheap enough that a parallel
    // builder has never been worth it; the pool is accepted for
    // interface uniformity and ignored.
    fc_assert(config.threshold > 0, "threshold must be positive");
    PartitionResult result;
    result.method = Method::Uniform;
    result.config = config;
    result.tree = BlockTree(static_cast<std::uint32_t>(cloud.size()));

    BlockNode root;
    root.begin = 0;
    root.end = static_cast<std::uint32_t>(cloud.size());
    result.tree.addNode(root);

    // Fixed depth: enough levels that a uniform cloud would satisfy
    // the threshold.
    std::uint16_t depth = 0;
    std::size_t blocks_needed =
        (cloud.size() + config.threshold - 1) / config.threshold;
    std::size_t blocks = 1;
    while (blocks < blocks_needed && depth < config.max_depth) {
        blocks *= 2;
        ++depth;
    }

    Builder builder{cloud, result.tree, result.stats, depth};
    if (cloud.size() > 0)
        builder.build(0, config.first_dim, cloud.bounds());

    result.tree.rebuildLeafList();
    detail::computeBounds(result.tree, cloud);
    // Space-uniform partitioning needs one streaming pass per level
    // (split planes are known a priori; no extrema traversals).
    result.stats.traversal_passes = depth;
    return result;
}

} // namespace fc::part
