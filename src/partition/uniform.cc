#include "partition/uniform.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/parallel.h"
#include "core/workspace.h"
#include "partition/detail.h"

namespace fc::part {

namespace {

using detail::SplitRec;

struct Builder
{
    const data::PointCloud &cloud;
    std::vector<PointIdx> &order;
    core::ThreadPool *pool;
    core::Arena &arena; ///< split records; reclaimed by Arena::reset
    std::uint16_t target_depth;

    /**
     * @p cell is the node's space cell (not the point bounds); splits
     * happen at the cell's spatial midpoint regardless of the data.
     * Mutates only the order slice [begin, end) and records the split
     * structure for the replay. Returns null at the target depth.
     */
    SplitRec *
    build(std::uint32_t begin, std::uint32_t end, std::uint16_t depth,
          int dim_counter, Aabb cell)
    {
        if (depth >= target_depth)
            return nullptr; // Leaf (possibly empty).

        SplitRec *rec = arena.create<SplitRec>();
        const int dim = dim_counter % 3;
        const float mid = cell.midpoint(dim);
        const std::uint32_t split = detail::splitRange(
            order, cloud, begin, end, dim, mid, pool, &arena);
        rec->local.elements_traversed += end - begin;
        ++rec->local.num_splits;
        rec->split = split;
        rec->dim = static_cast<std::int8_t>(dim);
        rec->value = mid;

        Aabb left_cell = cell;
        left_cell.hi.at(dim) = mid;
        Aabb right_cell = cell;
        right_cell.lo.at(dim) = mid;
        const std::uint16_t child_depth =
            static_cast<std::uint16_t>(depth + 1);
        // Disjoint slices: fork left, build right on this thread.
        detail::forkJoin(
            pool, end - begin,
            [this, begin, split, child_depth, dim_counter, left_cell,
             rec] {
                rec->left = build(begin, split, child_depth,
                                  dim_counter + 1, left_cell);
            },
            [this, split, end, child_depth, dim_counter, right_cell,
             rec] {
                rec->right = build(split, end, child_depth,
                                   dim_counter + 1, right_cell);
            });
        return rec;
    }
};

} // namespace

void
UniformPartitioner::partitionInto(const data::PointCloud &cloud,
                                  const PartitionConfig &config,
                                  core::ThreadPool *pool,
                                  core::Workspace &ws,
                                  PartitionResult &out) const
{
    fc_assert(config.threshold > 0, "threshold must be positive");
    out.method = Method::Uniform;
    out.config = config;
    out.stats = {};
    out.tree.reset(static_cast<std::uint32_t>(cloud.size()));

    BlockNode root;
    root.begin = 0;
    root.end = static_cast<std::uint32_t>(cloud.size());
    out.tree.addNode(root);

    // Fixed depth: enough levels that a uniform cloud would satisfy
    // the threshold.
    std::uint16_t depth = 0;
    std::size_t blocks_needed =
        (cloud.size() + config.threshold - 1) / config.threshold;
    std::size_t blocks = 1;
    while (blocks < blocks_needed && depth < config.max_depth) {
        blocks *= 2;
        ++depth;
    }

    // Phase 1 (parallel): reorder the DFT permutation and record the
    // split structure. Phase 2 (sequential, cheap): replay the records
    // into nodes in sequential allocation order.
    Builder builder{cloud, out.tree.order(), pool, ws.arena(), depth};
    SplitRec *root_rec = nullptr;
    if (cloud.size() > 0)
        root_rec =
            builder.build(0, static_cast<std::uint32_t>(cloud.size()),
                          0, config.first_dim, cloud.bounds());
    detail::replaySplits(out.tree, 0, root_rec, out.stats);

    out.tree.rebuildLeafList();
    detail::computeBounds(out.tree, cloud);
    // Space-uniform partitioning needs one streaming pass per level
    // (split planes are known a priori; no extrema traversals).
    out.stats.traversal_passes = depth;
}

} // namespace fc::part
