/**
 * @file
 * Octree partitioner (paper Fig. 16 baseline).
 *
 * Space-midpoint subdivision like the uniform method, but adaptive:
 * only blocks above the threshold are subdivided further. Expressed
 * here as three consecutive binary space-midpoint splits (x, y, z) per
 * octree level, which yields the identical block decomposition to an
 * 8-way octree cell split while reusing the binary BlockTree layout.
 * Residual imbalance remains because split planes ignore the data —
 * the source of the ~3% accuracy loss the paper attributes to octree.
 */

#ifndef FC_PARTITION_OCTREE_H
#define FC_PARTITION_OCTREE_H

#include "partition/partitioner.h"

namespace fc::part {

class OctreePartitioner : public Partitioner
{
  public:
    void partitionInto(const data::PointCloud &cloud,
                       const PartitionConfig &config,
                       core::ThreadPool *pool, core::Workspace &ws,
                       PartitionResult &out) const override;

    Method method() const override { return Method::Octree; }
};

} // namespace fc::part

#endif // FC_PARTITION_OCTREE_H
