/**
 * @file
 * The Fractal shape-aware partitioner (paper §IV-A, Algorithm 1).
 *
 * Recursive rule, threshold th = max points per block:
 *   - if |P| <= th: emit leaf
 *   - else: dim = d mod 3; mid = (max(P[dim]) + min(P[dim])) / 2;
 *     split P at mid; recurse on both halves with d+1.
 * Blocks are laid out in memory by depth-first traversal so adjacent
 * blocks cover spatially adjacent regions.
 *
 * Degenerate splits (all points on one side because the block is flat
 * along the current axis) retry the next axis, cycling through all
 * three; a block that is degenerate on every axis (coincident points)
 * becomes a leaf even above threshold. The paper relies on the same
 * cyclic-axis argument for coplanar scenes (§VI-D).
 */

#ifndef FC_PARTITION_FRACTAL_H
#define FC_PARTITION_FRACTAL_H

#include "partition/partitioner.h"

namespace fc::part {

class FractalPartitioner : public Partitioner
{
  public:
    void partitionInto(const data::PointCloud &cloud,
                       const PartitionConfig &config,
                       core::ThreadPool *pool, core::Workspace &ws,
                       PartitionResult &out) const override;

    Method method() const override { return Method::Fractal; }
};

} // namespace fc::part

#endif // FC_PARTITION_FRACTAL_H
