#include "partition/partitioner.h"

#include "common/logging.h"
#include "core/workspace.h"
#include "partition/detail.h"
#include "partition/fractal.h"
#include "partition/kdtree.h"
#include "partition/octree.h"
#include "partition/uniform.h"

namespace fc::part {

namespace {

/** Trivial strategy: the whole cloud is one block (PointAcc). */
class NonePartitioner : public Partitioner
{
  public:
    void
    partitionInto(const data::PointCloud &cloud,
                  const PartitionConfig &config, core::ThreadPool *,
                  core::Workspace &, PartitionResult &out) const override
    {
        out.method = Method::None;
        out.config = config;
        out.stats = {};
        out.tree.reset(static_cast<std::uint32_t>(cloud.size()));
        BlockNode root;
        root.begin = 0;
        root.end = static_cast<std::uint32_t>(cloud.size());
        out.tree.addNode(root);
        out.tree.rebuildLeafList();
        detail::computeBounds(out.tree, cloud);
    }

    Method method() const override { return Method::None; }
};

} // namespace

PartitionResult
Partitioner::partition(const data::PointCloud &cloud,
                       const PartitionConfig &config,
                       core::ThreadPool *pool) const
{
    core::Workspace ws;
    PartitionResult out;
    partitionInto(cloud, config, pool, ws, out);
    return out;
}

std::string
methodName(Method method)
{
    switch (method) {
      case Method::None:
        return "none";
      case Method::Uniform:
        return "uniform";
      case Method::Octree:
        return "octree";
      case Method::KdTree:
        return "kdtree";
      case Method::Fractal:
        return "fractal";
    }
    fc_panic("unknown partition method %d", static_cast<int>(method));
}

std::unique_ptr<Partitioner>
makePartitioner(Method method)
{
    switch (method) {
      case Method::None:
        return std::make_unique<NonePartitioner>();
      case Method::Uniform:
        return std::make_unique<UniformPartitioner>();
      case Method::Octree:
        return std::make_unique<OctreePartitioner>();
      case Method::KdTree:
        return std::make_unique<KdTreePartitioner>();
      case Method::Fractal:
        return std::make_unique<FractalPartitioner>();
    }
    fc_panic("unknown partition method %d", static_cast<int>(method));
}

} // namespace fc::part
