/**
 * @file
 * Density-aware KD-tree partitioner (Crescent's strategy, paper
 * §III-B/III-C).
 *
 * Each node is split at the median of the cycling axis, producing
 * strictly balanced blocks, at the cost of one exclusive median sort
 * per internal node. The stats record one sort of n log2(n) compares
 * per split — the serial, non-decomposable work that dominates
 * Crescent's latency (53% in the paper) and that the Fractal method
 * eliminates.
 */

#ifndef FC_PARTITION_KDTREE_H
#define FC_PARTITION_KDTREE_H

#include "partition/partitioner.h"

namespace fc::part {

class KdTreePartitioner : public Partitioner
{
  public:
    void partitionInto(const data::PointCloud &cloud,
                       const PartitionConfig &config,
                       core::ThreadPool *pool, core::Workspace &ws,
                       PartitionResult &out) const override;

    Method method() const override { return Method::KdTree; }
};

} // namespace fc::part

#endif // FC_PARTITION_KDTREE_H
