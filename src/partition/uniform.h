/**
 * @file
 * Space-uniform partitioner (PNNPU's strategy, paper Fig. 3(b)).
 *
 * The 3D space is bisected at fixed spatial midpoints of the root
 * bounding box, cycling axes, down to a fixed depth chosen so that a
 * *uniformly distributed* cloud would meet the block threshold:
 * depth = ceil(log2(n / th)). Real clouds are nothing like uniform, so
 * blocks end up severely imbalanced (dense regions overflow the
 * threshold, empty space produces empty blocks) — hardware-friendly
 * but accuracy-hostile, exactly the trade-off the paper criticizes.
 */

#ifndef FC_PARTITION_UNIFORM_H
#define FC_PARTITION_UNIFORM_H

#include "partition/partitioner.h"

namespace fc::part {

class UniformPartitioner : public Partitioner
{
  public:
    void partitionInto(const data::PointCloud &cloud,
                       const PartitionConfig &config,
                       core::ThreadPool *pool, core::Workspace &ws,
                       PartitionResult &out) const override;

    Method method() const override { return Method::Uniform; }
};

} // namespace fc::part

#endif // FC_PARTITION_UNIFORM_H
