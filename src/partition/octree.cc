#include "partition/octree.h"

#include <algorithm>

#include "common/logging.h"
#include "core/parallel.h"
#include "core/workspace.h"
#include "partition/detail.h"

namespace fc::part {

namespace {

using detail::SplitRec;

struct Builder
{
    const data::PointCloud &cloud;
    const PartitionConfig &config;
    std::vector<PointIdx> &order;
    core::ThreadPool *pool;
    core::Arena &arena; ///< split records; reclaimed by Arena::reset

    /**
     * Recursively split the order slice [begin, end) at the space
     * midpoint of @p cell, mutating only that slice and recording the
     * split structure for the replay. Returns null when the slice
     * stays a leaf.
     */
    SplitRec *
    build(std::uint32_t begin, std::uint32_t end, std::uint16_t depth,
          int dim_counter, Aabb cell)
    {
        const std::uint32_t size = end - begin;
        if (size <= config.threshold || depth >= config.max_depth)
            return nullptr; // Leaf.

        const int dim = dim_counter % 3;
        const float extent = cell.hi[dim] - cell.lo[dim];
        SplitRec *rec = arena.create<SplitRec>();
        if (!(extent > 0.0f)) {
            // Degenerate cell (coincident points): give up. The
            // record (dim = -1) carries the retry count only.
            ++rec->local.degenerate_retries;
            return rec;
        }
        const float mid = cell.midpoint(dim);
        const std::uint32_t split = detail::splitRange(
            order, cloud, begin, end, dim, mid, pool, &arena);
        rec->local.elements_traversed += size;
        ++rec->local.num_splits;
        rec->split = split;
        rec->dim = static_cast<std::int8_t>(dim);
        rec->value = mid;

        Aabb left_cell = cell;
        left_cell.hi.at(dim) = mid;
        Aabb right_cell = cell;
        right_cell.lo.at(dim) = mid;
        const std::uint16_t child_depth =
            static_cast<std::uint16_t>(depth + 1);
        // Disjoint slices: fork left, build right on this thread.
        detail::forkJoin(
            pool, size,
            [this, begin, split, child_depth, dim_counter, left_cell,
             rec] {
                rec->left = build(begin, split, child_depth,
                                  dim_counter + 1, left_cell);
            },
            [this, split, end, child_depth, dim_counter, right_cell,
             rec] {
                rec->right = build(split, end, child_depth,
                                   dim_counter + 1, right_cell);
            });
        return rec;
    }
};

} // namespace

void
OctreePartitioner::partitionInto(const data::PointCloud &cloud,
                                 const PartitionConfig &config,
                                 core::ThreadPool *pool,
                                 core::Workspace &ws,
                                 PartitionResult &out) const
{
    fc_assert(config.threshold > 0, "threshold must be positive");
    out.method = Method::Octree;
    out.config = config;
    out.stats = {};
    out.tree.reset(static_cast<std::uint32_t>(cloud.size()));

    BlockNode root;
    root.begin = 0;
    root.end = static_cast<std::uint32_t>(cloud.size());
    out.tree.addNode(root);

    // Phase 1 (parallel): reorder the DFT permutation and record the
    // split structure — subtree tasks below the first splits, and the
    // chunked splitRange above them. Phase 2 (sequential, cheap):
    // replay the records into nodes in sequential allocation order.
    Builder builder{cloud, config, out.tree.order(), pool, ws.arena()};
    SplitRec *root_rec = nullptr;
    if (cloud.size() > 0)
        root_rec =
            builder.build(0, static_cast<std::uint32_t>(cloud.size()),
                          0, config.first_dim, cloud.bounds());
    detail::replaySplits(out.tree, 0, root_rec, out.stats);

    out.tree.rebuildLeafList();
    detail::computeBounds(out.tree, cloud);

    std::uint16_t internal_depth = 0;
    for (std::size_t i = 0; i < out.tree.numNodes(); ++i) {
        const BlockNode &n = out.tree.node(static_cast<NodeIdx>(i));
        if (!n.isLeaf())
            internal_depth = std::max<std::uint16_t>(
                internal_depth, static_cast<std::uint16_t>(n.depth + 1));
    }
    // Octree needs level-order passes plus per-level occupancy
    // bookkeeping; the dynamic subdivision control adds a constant
    // factor modelled in the fractal-engine hardware model.
    out.stats.traversal_passes = internal_depth;
}

} // namespace fc::part
