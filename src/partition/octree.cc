#include "partition/octree.h"

#include <algorithm>

#include "common/logging.h"
#include "partition/detail.h"

namespace fc::part {

namespace {

struct Builder
{
    const data::PointCloud &cloud;
    const PartitionConfig &config;
    BlockTree &tree;
    PartitionStats &stats;

    void
    build(NodeIdx node_idx, int dim_counter, Aabb cell)
    {
        const std::uint32_t begin = tree.node(node_idx).begin;
        const std::uint32_t end = tree.node(node_idx).end;
        const std::uint16_t depth = tree.node(node_idx).depth;
        const std::uint32_t size = end - begin;

        if (size <= config.threshold || depth >= config.max_depth)
            return;

        const int dim = dim_counter % 3;
        const float extent = cell.hi[dim] - cell.lo[dim];
        if (!(extent > 0.0f)) {
            // Degenerate cell (coincident points): give up.
            ++stats.degenerate_retries;
            return;
        }
        const float mid = cell.midpoint(dim);
        const std::uint32_t split =
            detail::splitRange(tree, cloud, begin, end, dim, mid);
        stats.elements_traversed += size;
        ++stats.num_splits;

        BlockNode left;
        left.begin = begin;
        left.end = split;
        left.parent = node_idx;
        left.depth = static_cast<std::uint16_t>(depth + 1);
        BlockNode right;
        right.begin = split;
        right.end = end;
        right.parent = node_idx;
        right.depth = static_cast<std::uint16_t>(depth + 1);

        const NodeIdx left_idx = tree.addNode(left);
        const NodeIdx right_idx = tree.addNode(right);
        BlockNode &parent = tree.node(node_idx);
        parent.left = left_idx;
        parent.right = right_idx;
        parent.splitDim = static_cast<std::int8_t>(dim);
        parent.splitValue = mid;

        Aabb left_cell = cell;
        left_cell.hi.at(dim) = mid;
        Aabb right_cell = cell;
        right_cell.lo.at(dim) = mid;

        build(left_idx, dim_counter + 1, left_cell);
        build(right_idx, dim_counter + 1, right_cell);
    }
};

} // namespace

PartitionResult
OctreePartitioner::partition(const data::PointCloud &cloud,
                             const PartitionConfig &config,
                             core::ThreadPool *) const
{
    // Space-midpoint splits need no extrema scan, so construction is
    // memory-bound and stays sequential; the pool is ignored.
    fc_assert(config.threshold > 0, "threshold must be positive");
    PartitionResult result;
    result.method = Method::Octree;
    result.config = config;
    result.tree = BlockTree(static_cast<std::uint32_t>(cloud.size()));

    BlockNode root;
    root.begin = 0;
    root.end = static_cast<std::uint32_t>(cloud.size());
    result.tree.addNode(root);

    Builder builder{cloud, config, result.tree, result.stats};
    if (cloud.size() > 0)
        builder.build(0, config.first_dim, cloud.bounds());

    result.tree.rebuildLeafList();
    detail::computeBounds(result.tree, cloud);

    std::uint16_t internal_depth = 0;
    for (std::size_t i = 0; i < result.tree.numNodes(); ++i) {
        const BlockNode &n = result.tree.node(static_cast<NodeIdx>(i));
        if (!n.isLeaf())
            internal_depth = std::max<std::uint16_t>(
                internal_depth, static_cast<std::uint16_t>(n.depth + 1));
    }
    // Octree needs level-order passes plus per-level occupancy
    // bookkeeping; the dynamic subdivision control adds a constant
    // factor modelled in the fractal-engine hardware model.
    result.stats.traversal_passes = internal_depth;
    return result;
}

} // namespace fc::part
