/**
 * @file
 * Common interface for point-cloud partitioning strategies.
 *
 * The four strategies of the paper's Fig. 3 / Fig. 16 — none, uniform
 * (space-aware, PNNPU), KD-tree (density-aware, Crescent), octree, and
 * Fractal (shape-aware, this paper) — all produce a BlockTree plus a
 * PartitionStats record of the algorithmic work performed, which the
 * hardware models turn into cycles and energy.
 */

#ifndef FC_PARTITION_PARTITIONER_H
#define FC_PARTITION_PARTITIONER_H

#include <cstdint>
#include <memory>
#include <string>

#include "dataset/point_cloud.h"
#include "partition/block_tree.h"

namespace fc::core {
class ThreadPool;
class Workspace;
}

namespace fc::part {

/** Strategy identifiers (paper naming). */
enum class Method
{
    None,    ///< no partitioning (PointAcc baseline)
    Uniform, ///< space-uniform fixed-depth bisection (PNNPU)
    Octree,  ///< space-midpoint adaptive subdivision
    KdTree,  ///< median-split density-aware (Crescent)
    Fractal, ///< shape-aware extrema-midpoint (this paper)
};

std::string methodName(Method method);

/** Partitioning controls. */
struct PartitionConfig
{
    /** Threshold th: maximum points per block (paper Alg. 1). */
    std::uint32_t threshold = 256;

    /** First split dimension (paper cycles x, y, z from d=0). */
    int first_dim = 0;

    /** Safety bound on recursion depth. */
    std::uint16_t max_depth = 48;
};

/**
 * Algorithmic work performed by a partitioning run. Units are abstract
 * events; the fractal-engine hardware model assigns cycles/energy.
 */
struct PartitionStats
{
    /** Point visits during extrema/partition traversals. */
    std::uint64_t elements_traversed = 0;

    /**
     * Number of level-parallel traversal passes (Fig. 5: 4 passes for
     * 1K points at BS=64; 11 for 289K at BS=256). All node splits at
     * one tree level share a pass because the hardware traverses them
     * concurrently.
     */
    std::uint32_t traversal_passes = 0;

    /** Number of median sorts (KD-tree only; Fig. 5 left). */
    std::uint64_t num_sorts = 0;

    /** Total comparator operations spent in sorts (n log2 n model). */
    std::uint64_t sort_compares = 0;

    /** Splits that had to retry on another axis (degenerate dims). */
    std::uint64_t degenerate_retries = 0;

    /** Number of split operations performed. */
    std::uint64_t num_splits = 0;

    PartitionStats &
    operator+=(const PartitionStats &o)
    {
        elements_traversed += o.elements_traversed;
        traversal_passes += o.traversal_passes;
        num_sorts += o.num_sorts;
        sort_compares += o.sort_compares;
        degenerate_retries += o.degenerate_retries;
        num_splits += o.num_splits;
        return *this;
    }
};

/** Result bundle. */
struct PartitionResult
{
    BlockTree tree;
    PartitionStats stats;
    Method method = Method::None;
    PartitionConfig config;
};

/** Abstract partitioning strategy. */
class Partitioner
{
  public:
    virtual ~Partitioner() = default;

    /**
     * Partition a cloud into blocks of at most config.threshold.
     *
     * @p pool optionally parallelizes tree construction (subtree
     * tasks over disjoint ranges of the DFT order). The resulting
     * tree — node order, ranges, split planes, and stats — is
     * bit-identical to the sequential (null-pool) build. Strategies
     * without a parallel builder ignore the pool.
     *
     * Thin wrapper over partitionInto with a private workspace; see
     * below for the allocation-free steady-state variant.
     */
    PartitionResult partition(const data::PointCloud &cloud,
                              const PartitionConfig &config,
                              core::ThreadPool *pool = nullptr) const;

    /**
     * Partition in place: @p out is rebuilt (tree reset, stats
     * zeroed) reusing its buffer capacity, and all construction
     * scratch — split records, per-chunk staging — is drawn from
     * @p ws's arena. A warm same-shape rebuild performs zero heap
     * allocations on the sequential path. Identical output to
     * partition() at any thread count.
     */
    virtual void partitionInto(const data::PointCloud &cloud,
                               const PartitionConfig &config,
                               core::ThreadPool *pool,
                               core::Workspace &ws,
                               PartitionResult &out) const = 0;

    virtual Method method() const = 0;

    std::string name() const { return methodName(method()); }
};

/** Factory covering every strategy. */
std::unique_ptr<Partitioner> makePartitioner(Method method);

/**
 * Lazily-built, method-keyed partitioner reuse: get() constructs on
 * first use (or method change) and returns the cached strategy
 * otherwise, so steady-state re-partitioning (every network stage,
 * every serve request) skips the factory's heap allocation. Lives in
 * a workspace slot; single-owner like the rest of the workspace.
 */
class PartitionerCache
{
  public:
    const Partitioner &
    get(Method method)
    {
        if (partitioner_ == nullptr || method_ != method) {
            partitioner_ = makePartitioner(method);
            method_ = method;
        }
        return *partitioner_;
    }

  private:
    Method method_ = Method::None;
    std::unique_ptr<Partitioner> partitioner_;
};

} // namespace fc::part

#endif // FC_PARTITION_PARTITIONER_H
