/**
 * @file
 * Binary block tree produced by all partitioning strategies.
 *
 * Nodes store half-open ranges [begin, end) into a depth-first-ordered
 * permutation of the input cloud: the DFT memory layout of the paper's
 * Fractal method (§IV-A). Leaf i occupies a contiguous range, leaves
 * are ordered left-to-right (spatially adjacent regions are adjacent in
 * memory), and the parent of a leaf is the search space used by
 * block-wise neighbor operations (§IV-B, Fig. 7).
 */

#ifndef FC_PARTITION_BLOCK_TREE_H
#define FC_PARTITION_BLOCK_TREE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace fc::part {

/** Index of a node inside a BlockTree. */
using NodeIdx = std::int32_t;
inline constexpr NodeIdx kNoNode = -1;

/** One node of the partition tree. */
struct BlockNode
{
    /** Half-open range into the DFT point order. */
    std::uint32_t begin = 0;
    std::uint32_t end = 0;

    NodeIdx parent = kNoNode;
    NodeIdx left = kNoNode;
    NodeIdx right = kNoNode;

    /** Depth in the tree (root = 0). */
    std::uint16_t depth = 0;

    /** Split axis (0/1/2) or -1 for leaves. */
    std::int8_t splitDim = -1;

    /** Split value along splitDim (midpoint or median). */
    float splitValue = 0.0f;

    /** Bounding box of the points in this node. */
    Aabb bounds;

    std::uint32_t size() const { return end - begin; }
    bool isLeaf() const { return left == kNoNode; }
};

/**
 * The partition tree plus the DFT point permutation.
 *
 * order()[pos] maps a position in DFT layout back to the original
 * point index. All block ranges refer to DFT positions.
 */
class BlockTree
{
  public:
    BlockTree() = default;

    /** Start a tree over @p num_points points (identity order). */
    explicit BlockTree(std::uint32_t num_points);

    /**
     * Rebuild in place over @p num_points points (identity order):
     * nodes and leaves are cleared, every buffer keeps its capacity.
     * The in-place partitionInto path uses this so a warm re-partition
     * of a same-shape cloud performs zero heap allocations.
     */
    void reset(std::uint32_t num_points);

    /** Append a node; returns its index. */
    NodeIdx addNode(const BlockNode &node);

    const BlockNode &node(NodeIdx idx) const { return nodes_[idx]; }
    BlockNode &node(NodeIdx idx) { return nodes_[idx]; }

    std::size_t numNodes() const { return nodes_.size(); }
    std::uint32_t numPoints() const
    {
        return static_cast<std::uint32_t>(order_.size());
    }

    const std::vector<PointIdx> &order() const { return order_; }
    std::vector<PointIdx> &order() { return order_; }

    /** Leaf node ids in depth-first (= memory) order. */
    const std::vector<NodeIdx> &leaves() const { return leaves_; }

    /** Recompute the leaf list by walking the tree depth-first. */
    void rebuildLeafList();

    /**
     * Search-space node for a leaf: its parent if depth >= 2, else the
     * leaf itself (paper Fig. 7(a): depth-1 leaves search themselves;
     * deeper leaves search their immediate parent).
     */
    NodeIdx searchSpaceNode(NodeIdx leaf) const;

    /** Maximum leaf depth. */
    std::uint16_t maxDepth() const;

    /** Largest leaf size in points. */
    std::uint32_t maxLeafSize() const;

    /** Smallest leaf size in points. */
    std::uint32_t minLeafSize() const;

    /** Coefficient of variation of leaf sizes (stddev / mean). */
    double leafSizeCv() const;

    /**
     * Validate structural invariants (ranges partition [0, n), parents
     * contain children, DFT order of leaves). Panics on violation.
     * Intended for tests.
     */
    void validate() const;

    /** Multi-line summary for debugging. */
    std::string summary() const;

  private:
    std::vector<BlockNode> nodes_;
    std::vector<PointIdx> order_;
    std::vector<NodeIdx> leaves_;
};

} // namespace fc::part

#endif // FC_PARTITION_BLOCK_TREE_H
