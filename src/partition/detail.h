/**
 * @file
 * Internal helpers shared by the concrete partitioners. Not part of
 * the public API.
 */

#ifndef FC_PARTITION_DETAIL_H
#define FC_PARTITION_DETAIL_H

#include <cstdint>

#include "dataset/point_cloud.h"
#include "partition/block_tree.h"

namespace fc::part::detail {

/**
 * Fill node.bounds for every node from the actual point positions:
 * leaves from their ranges, internal nodes as the union of children.
 */
void computeBounds(BlockTree &tree, const data::PointCloud &cloud);

/**
 * Stable-partition the order slice [begin, end) of @p tree around
 * @p split_value on @p dim; returns the index of the first element of
 * the right side. Points with coordinate < split_value go left.
 */
std::uint32_t splitRange(BlockTree &tree, const data::PointCloud &cloud,
                         std::uint32_t begin, std::uint32_t end, int dim,
                         float split_value);

/** Min/max of coordinate @p dim over the order slice [begin, end). */
std::pair<float, float> rangeExtrema(const BlockTree &tree,
                                     const data::PointCloud &cloud,
                                     std::uint32_t begin,
                                     std::uint32_t end, int dim);

} // namespace fc::part::detail

#endif // FC_PARTITION_DETAIL_H
