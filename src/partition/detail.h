/**
 * @file
 * Internal helpers shared by the concrete partitioners. Not part of
 * the public API.
 */

#ifndef FC_PARTITION_DETAIL_H
#define FC_PARTITION_DETAIL_H

#include <cstdint>
#include <utility>

#include "core/parallel.h"
#include "core/workspace.h"
#include "dataset/point_cloud.h"
#include "partition/block_tree.h"
#include "partition/partitioner.h"

namespace fc::part::detail {

/**
 * Subtrees at or above this many points are forked as pool tasks by
 * the parallel builders; smaller ones recurse inline (task overhead
 * would dominate).
 */
inline constexpr std::uint32_t kParallelCutoff = 2048;

/**
 * The builders' shared fork/join policy: fork @p left onto the pool,
 * run @p right on the calling thread, and join before returning. A
 * null/single-thread pool, or a node of fewer than twice
 * kParallelCutoff points (both halves must be worth a task), degrades
 * to plain sequential calls — left, then right. The two callables
 * must touch disjoint state (the builders hand them disjoint order
 * slices).
 */
template <typename LeftFn, typename RightFn>
void
forkJoin(core::ThreadPool *pool, std::uint32_t size, LeftFn &&left,
         RightFn &&right)
{
    if (pool != nullptr && pool->numThreads() > 1 &&
        size >= 2 * kParallelCutoff) {
        core::TaskGroup group(pool);
        group.run(std::forward<LeftFn>(left));
        right();
        group.wait();
    } else {
        left();
        right();
    }
}

/**
 * One performed split, recorded during a (possibly parallel) build
 * phase and replayed sequentially into the BlockTree.
 *
 * The parallel builders only mutate disjoint slices of the DFT order;
 * node allocation is deferred to replaySplits(), which walks this
 * record tree in exactly the order the sequential builder allocates
 * nodes — so the resulting BlockTree is bit-identical at any thread
 * count.
 *
 * Records live in a core::Arena (the partition scratch of the
 * workspace layer): children are raw pointers, the whole record tree
 * is reclaimed wholesale by Arena::reset, and a warm same-shape
 * rebuild replays into the cold run's footprint without touching the
 * heap. Arena::allocate is thread-safe, so concurrent subtree tasks
 * may record splits directly.
 */
struct SplitRec
{
    /** Position of the first right-side element (split or median). */
    std::uint32_t split = 0;

    /** Split axis, or -1 for a degenerate (stats-only) record. */
    std::int8_t dim = -1;
    float value = 0.0f;

    /** Stat deltas attributable to this node's split attempts. */
    PartitionStats local;

    SplitRec *left = nullptr;
    SplitRec *right = nullptr;
};

/**
 * Replay a record tree into @p tree, allocating nodes in the exact
 * order of the sequential builders (left, right, then left's
 * subtree), and fold each record's stat deltas in the same pre-order.
 */
void replaySplits(BlockTree &tree, NodeIdx node_idx,
                  const SplitRec *rec, PartitionStats &stats);

/**
 * Fill node.bounds for every node from the actual point positions:
 * leaves from their ranges, internal nodes as the union of children.
 */
void computeBounds(BlockTree &tree, const data::PointCloud &cloud);

/**
 * Slices at or above this many points partition chunk-wise (parallel
 * splitRange below); smaller slices use one plain std::partition.
 * The choice depends only on the slice size — never on the pool — so
 * any thread count (including none) produces the same arrangement.
 */
inline constexpr std::uint32_t kSplitParallelCutoff = 8192;

/** Chunk length of the parallel splitRange phases. */
inline constexpr std::uint32_t kSplitGrain = 4096;

/**
 * Partition the order slice [begin, end) of @p tree around
 * @p split_value on @p dim; returns the index of the first element of
 * the right side. Points with coordinate < split_value go left.
 *
 * Slices of at least kSplitParallelCutoff points run the parallel
 * root-split algorithm: fixed kSplitGrain chunks are std::partition'd
 * independently (dispatched over @p pool), then merged two-way in
 * chunk order — left halves first, right halves after — so the result
 * is a pure function of the input slice, bit-identical at any thread
 * count. On already-partitioned input (including all-equal
 * coordinates) every phase is the identity, matching a single
 * std::partition byte for byte. Smaller slices take exactly the
 * sequential std::partition path.
 *
 * @p arena (optional, here and in medianSplit/rangeExtrema) supplies
 * the chunked path's staging buffers — per-chunk mid/offset tables
 * and the merge scratch — so warm partition rebuilds stop allocating;
 * null keeps the historical per-call heap vectors. Purely a storage
 * choice: the arrangement is identical either way.
 */
std::uint32_t splitRange(BlockTree &tree, const data::PointCloud &cloud,
                         std::uint32_t begin, std::uint32_t end, int dim,
                         float split_value,
                         core::ThreadPool *pool = nullptr,
                         core::Arena *arena = nullptr);

/**
 * Order-slice overload for builders that run before the BlockTree
 * exists (the parallel subtree builders mutate disjoint slices of the
 * bare DFT order).
 */
std::uint32_t splitRange(std::vector<PointIdx> &order,
                         const data::PointCloud &cloud,
                         std::uint32_t begin, std::uint32_t end, int dim,
                         float split_value,
                         core::ThreadPool *pool = nullptr,
                         core::Arena *arena = nullptr);

/**
 * Rearrange the order slice [begin, end) so that every element of
 * [begin, median) compares <= every element of [median, end) on
 * @p dim, where median = begin + size / 2 — the arrangement the
 * KD-tree builder needs around its fixed median position.
 *
 * Slices below kSplitParallelCutoff use std::nth_element (the
 * historical sequential path, preserved bit for bit). Larger slices
 * run a deterministic quickselect over parallel splitRange with
 * extrema-midpoint pivots, cutting the serial median-selection prefix
 * at the tree root. As with splitRange, the algorithm choice depends
 * only on the slice size, so results are identical at any thread
 * count.
 */
void medianSplit(std::vector<PointIdx> &order,
                 const data::PointCloud &cloud, std::uint32_t begin,
                 std::uint32_t end, int dim,
                 core::ThreadPool *pool = nullptr,
                 core::Arena *arena = nullptr);

/**
 * Min/max of coordinate @p dim over the order slice [begin, end).
 * Chunked over @p pool for large slices; min/max folds are exact, so
 * the result never depends on the chunking or thread count.
 */
std::pair<float, float> rangeExtrema(const std::vector<PointIdx> &order,
                                     const data::PointCloud &cloud,
                                     std::uint32_t begin,
                                     std::uint32_t end, int dim,
                                     core::ThreadPool *pool = nullptr,
                                     core::Arena *arena = nullptr);

} // namespace fc::part::detail

#endif // FC_PARTITION_DETAIL_H
