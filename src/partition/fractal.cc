#include "partition/fractal.h"

#include <algorithm>

#include "common/logging.h"
#include "partition/detail.h"

namespace fc::part {

namespace {

struct Builder
{
    const data::PointCloud &cloud;
    const PartitionConfig &config;
    BlockTree &tree;
    PartitionStats &stats;

    /**
     * Recursively partition the node's range. @p dim_counter is the
     * paper's cycling dimension index d.
     */
    void
    build(NodeIdx node_idx, int dim_counter)
    {
        // Copy the POD fields we need: addNode() may reallocate nodes.
        const std::uint32_t begin = tree.node(node_idx).begin;
        const std::uint32_t end = tree.node(node_idx).end;
        const std::uint16_t depth = tree.node(node_idx).depth;
        const std::uint32_t size = end - begin;

        if (size <= config.threshold || depth >= config.max_depth)
            return; // Leaf.

        // Try the cycling axis first, then the other two for
        // degenerate (non-splittable) layouts.
        for (int attempt = 0; attempt < 3; ++attempt) {
            const int dim = (dim_counter + attempt) % 3;
            const auto [lo, hi] =
                detail::rangeExtrema(tree, cloud, begin, end, dim);
            stats.elements_traversed += size; // extrema traversal
            const float mid = (lo + hi) * 0.5f;
            const std::uint32_t split =
                detail::splitRange(tree, cloud, begin, end, dim, mid);
            stats.elements_traversed += size; // partition traversal
            if (split == begin || split == end) {
                ++stats.degenerate_retries;
                continue;
            }
            ++stats.num_splits;

            BlockNode left;
            left.begin = begin;
            left.end = split;
            left.parent = node_idx;
            left.depth = static_cast<std::uint16_t>(depth + 1);
            BlockNode right;
            right.begin = split;
            right.end = end;
            right.parent = node_idx;
            right.depth = static_cast<std::uint16_t>(depth + 1);

            const NodeIdx left_idx = tree.addNode(left);
            const NodeIdx right_idx = tree.addNode(right);
            BlockNode &parent = tree.node(node_idx);
            parent.left = left_idx;
            parent.right = right_idx;
            parent.splitDim = static_cast<std::int8_t>(dim);
            parent.splitValue = mid;

            build(left_idx, dim_counter + attempt + 1);
            build(right_idx, dim_counter + attempt + 1);
            return;
        }
        // Degenerate on all three axes: coincident points; keep as a
        // leaf even above threshold.
    }
};

} // namespace

PartitionResult
FractalPartitioner::partition(const data::PointCloud &cloud,
                              const PartitionConfig &config) const
{
    fc_assert(config.threshold > 0, "threshold must be positive");
    PartitionResult result;
    result.method = Method::Fractal;
    result.config = config;
    result.tree = BlockTree(static_cast<std::uint32_t>(cloud.size()));

    BlockNode root;
    root.begin = 0;
    root.end = static_cast<std::uint32_t>(cloud.size());
    result.tree.addNode(root);

    Builder builder{cloud, config, result.tree, result.stats};
    builder.build(0, config.first_dim);

    result.tree.rebuildLeafList();
    detail::computeBounds(result.tree, cloud);

    // One level-parallel traversal pass per split level: the hardware
    // processes every node of a level concurrently (Fig. 5 right).
    std::uint16_t internal_depth = 0;
    for (std::size_t i = 0; i < result.tree.numNodes(); ++i) {
        const BlockNode &n = result.tree.node(static_cast<NodeIdx>(i));
        if (!n.isLeaf())
            internal_depth = std::max<std::uint16_t>(
                internal_depth, static_cast<std::uint16_t>(n.depth + 1));
    }
    result.stats.traversal_passes = internal_depth;
    return result;
}

} // namespace fc::part
