#include "partition/fractal.h"

#include <algorithm>

#include "common/logging.h"
#include "core/parallel.h"
#include "core/workspace.h"
#include "partition/detail.h"

namespace fc::part {

namespace {

using detail::SplitRec;

struct Builder
{
    const data::PointCloud &cloud;
    const PartitionConfig &config;
    std::vector<PointIdx> &order;
    core::ThreadPool *pool;
    core::Arena &arena; ///< split records; reclaimed by Arena::reset

    /**
     * Recursively split the order slice [begin, end), mutating only
     * that slice and recording the split structure for the replay
     * (see detail::SplitRec). @p dim_counter is the paper's cycling
     * dimension index d. Returns null when the slice stays a leaf.
     */
    SplitRec *
    build(std::uint32_t begin, std::uint32_t end, std::uint16_t depth,
          int dim_counter)
    {
        const std::uint32_t size = end - begin;
        if (size <= config.threshold || depth >= config.max_depth)
            return nullptr; // Leaf.

        SplitRec *rec = arena.create<SplitRec>();
        // Try the cycling axis first, then the other two for
        // degenerate (non-splittable) layouts.
        for (int attempt = 0; attempt < 3; ++attempt) {
            const int dim = (dim_counter + attempt) % 3;
            const auto [lo, hi] = detail::rangeExtrema(
                order, cloud, begin, end, dim, pool, &arena);
            rec->local.elements_traversed += size; // extrema traversal
            // Halve-then-add: lo + hi overflows to +/-inf for spans
            // beyond FLT_MAX, and an inf midpoint degenerates every
            // split (same guard as detail::medianSplit's pivot).
            const float mid = lo * 0.5f + hi * 0.5f;
            const std::uint32_t split = detail::splitRange(
                order, cloud, begin, end, dim, mid, pool, &arena);
            rec->local.elements_traversed += size; // partition traversal
            if (split == begin || split == end) {
                ++rec->local.degenerate_retries;
                continue;
            }
            ++rec->local.num_splits;
            rec->split = split;
            rec->dim = static_cast<std::int8_t>(dim);
            rec->value = mid;

            const std::uint16_t child_depth =
                static_cast<std::uint16_t>(depth + 1);
            const int next = dim_counter + attempt + 1;
            // Disjoint slices: fork left, build right on this thread.
            detail::forkJoin(
                pool, size,
                [this, begin, split, child_depth, next, rec] {
                    rec->left = build(begin, split, child_depth, next);
                },
                [this, split, end, child_depth, next, rec] {
                    rec->right = build(split, end, child_depth, next);
                });
            return rec;
        }
        // Degenerate on all three axes: coincident points; keep as a
        // leaf even above threshold. The record (dim = -1) carries
        // the traversal cost of the failed attempts.
        return rec;
    }
};

} // namespace

void
FractalPartitioner::partitionInto(const data::PointCloud &cloud,
                                  const PartitionConfig &config,
                                  core::ThreadPool *pool,
                                  core::Workspace &ws,
                                  PartitionResult &out) const
{
    fc_assert(config.threshold > 0, "threshold must be positive");
    out.method = Method::Fractal;
    out.config = config;
    out.stats = {};
    out.tree.reset(static_cast<std::uint32_t>(cloud.size()));

    BlockNode root;
    root.begin = 0;
    root.end = static_cast<std::uint32_t>(cloud.size());
    out.tree.addNode(root);

    // Phase 1 (parallel): reorder the DFT permutation and record the
    // split structure. Phase 2 (sequential, cheap): replay the records
    // into nodes, preserving the sequential allocation order.
    Builder builder{cloud, config, out.tree.order(), pool, ws.arena()};
    const SplitRec *root_rec =
        builder.build(0, static_cast<std::uint32_t>(cloud.size()), 0,
                      config.first_dim);
    detail::replaySplits(out.tree, 0, root_rec, out.stats);

    out.tree.rebuildLeafList();
    detail::computeBounds(out.tree, cloud);

    // One level-parallel traversal pass per split level: the hardware
    // processes every node of a level concurrently (Fig. 5 right).
    std::uint16_t internal_depth = 0;
    for (std::size_t i = 0; i < out.tree.numNodes(); ++i) {
        const BlockNode &n = out.tree.node(static_cast<NodeIdx>(i));
        if (!n.isLeaf())
            internal_depth = std::max<std::uint16_t>(
                internal_depth, static_cast<std::uint16_t>(n.depth + 1));
    }
    out.stats.traversal_passes = internal_depth;
}

} // namespace fc::part
