/**
 * @file
 * The serving scheduler: bounded FIFO admission, per-request
 * deadlines, cooperative cancellation, and the work-conserving spill
 * policy.
 *
 * The Scheduler owns no threads — it is the pure bookkeeping core of
 * fc::serve::AsyncPipeline, which pairs it with a standalone
 * core::ThreadPool. Executors interact with it through a narrow
 * protocol:
 *
 *   trySubmit/submitBlocking  admit one request at the FIFO tail
 *                             (bounded; trySubmit fails when full),
 *   acquire                   pop the FIFO head; requests already
 *                             cancelled or past their deadline are
 *                             retired here without running,
 *   checkpoint                mid-run cancel/deadline probe at stage
 *                             boundaries; retires the request when it
 *                             answers false,
 *   complete/fail             terminal transitions, and
 *   poll/state/wait/cancel    the client-facing side.
 *
 * Work-conserving spill: acquire() marks a request `spill` when the
 * requests in flight (queued + running) number fewer than the pool's
 * threads — the pool cannot be saturated by whole requests, so the
 * executor should dispatch the request's intra-cloud block items onto
 * the shared pool instead of running them inline. checkpoint()
 * refreshes the decision at every stage boundary, so a request
 * acquired at saturation starts spilling once the pool drains. Every
 * block op is deterministic with respect to its pool, so the decision
 * affects wall-clock only, never results.
 */

#ifndef FC_SERVE_SCHEDULER_H
#define FC_SERVE_SCHEDULER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/pipeline.h"
#include "dataset/point_cloud.h"

namespace fc::serve {

/** Steady clock used for deadlines and latency accounting. */
using Clock = std::chrono::steady_clock;

/** Opaque handle to a submitted request. id 0 is never issued. */
struct Ticket
{
    std::uint64_t id = 0;
};

/** Lifecycle of a request. */
enum class RequestState : std::uint8_t {
    Queued,    ///< admitted, waiting for a worker
    Running,   ///< a worker is processing it
    Done,      ///< finished; outcome carries the result
    Cancelled, ///< retired by cancel() before finishing
    Expired,   ///< retired because its deadline passed
    Failed,    ///< processing threw; outcome carries the message
};

const char *stateName(RequestState state);

/** Done / Cancelled / Expired / Failed. */
bool isTerminal(RequestState state);

/** Steady-clock milestones of one request (for latency accounting). */
struct RequestTiming
{
    Clock::time_point submitted;
    Clock::time_point started; ///< == finished for never-run requests
    Clock::time_point finished;
};

/** Terminal outcome of a request, returned once by wait(). */
struct RequestOutcome
{
    RequestState state = RequestState::Cancelled;

    /** Identical to the blocking path's output; valid when Done. */
    BatchResult result;

    /** Exception message; non-empty only when Failed. */
    std::string error;

    /** The original exception, for callers (like runBatch) that want
     *  to rethrow it; non-null only when Failed. */
    std::exception_ptr exception;

    RequestTiming timing;

    /** Whether the work-conserving policy spilled this request's
     *  intra-cloud block items onto the shared pool for at least one
     *  stage. */
    bool spilled = false;
};

/**
 * Thread-safe request ledger (see file comment for the protocol).
 *
 * FIFO fairness note: executors do not acquire a *specific* request —
 * acquire() always hands out the current FIFO head. AsyncPipeline
 * enqueues exactly one executor task per admitted request, so the
 * i-th task to run processes the i-th admitted request even when task
 * and record insertion interleave across submitter threads.
 */
class Scheduler
{
  public:
    /** What an executor needs to process one request. */
    struct Job
    {
        std::uint64_t id = 0;
        std::shared_ptr<const data::PointCloud> cloud;
        BatchRequest request;

        /** Work-conserving decision (see file comment). */
        bool spill = false;
    };

    /**
     * @param queue_capacity  max requests waiting (Queued) at once
     * @param num_threads     pool size the spill policy compares with
     * @param work_conserving false pins every request to one-cloud-
     *                        per-thread (spill always false)
     */
    Scheduler(std::size_t queue_capacity, unsigned num_threads,
              bool work_conserving = true);

    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Admit one request at the FIFO tail. Fails (nullopt) when the
     * queue is at capacity or the scheduler is shutting down.
     *
     * @param deadline relative to now; the request is retired as
     *        Expired if a worker would start or continue it after
     *        submit time + deadline.
     */
    std::optional<Ticket>
    trySubmit(std::shared_ptr<const data::PointCloud> cloud,
              const BatchRequest &request,
              std::optional<Clock::duration> deadline);

    /** Like trySubmit, but blocks until queue space frees up. Fails
     *  only when the scheduler shuts down while waiting. */
    std::optional<Ticket>
    submitBlocking(std::shared_ptr<const data::PointCloud> cloud,
                   const BatchRequest &request,
                   std::optional<Clock::duration> deadline);

    /**
     * Pop the FIFO head (must be non-empty: one executor task exists
     * per queued request). Returns the job to run, or nullopt when
     * the head was already cancelled or past its deadline — the
     * record is retired (Cancelled/Expired) and the executor has
     * nothing to do.
     */
    std::optional<Job> acquire();

    /**
     * Mid-run probe, called between stages of a Running request.
     * Returns true to continue; false means the request was just
     * retired (Cancelled or Expired) and the executor must stop.
     *
     * When continuing and @p spill is non-null, the work-conserving
     * decision is refreshed into it: a request acquired at pool
     * saturation starts spilling at its next stage boundary once the
     * pool drains below one-request-per-thread (sticky — a request
     * that started spilling keeps spilling; its chunks are already in
     * flight).
     */
    bool checkpoint(std::uint64_t id, bool *spill = nullptr);

    /** Terminal transition: the request finished with @p result. */
    void complete(std::uint64_t id, BatchResult result);

    /** Terminal transition: processing threw @p exception. */
    void fail(std::uint64_t id, std::exception_ptr exception);

    /**
     * Request cancellation. Queued work is retired when its executor
     * task pops it; running work stops at its next checkpoint().
     * Returns false when the request already reached a terminal
     * state (or the ticket was consumed by wait()).
     *
     * true means "cancellation requested", not "will not complete":
     * a request past its last stage checkpoint still retires Done,
     * so callers must branch on the terminal state from wait(), not
     * on cancel()'s return value.
     */
    bool cancel(Ticket ticket);

    /** True once the request is in a terminal state. */
    bool poll(Ticket ticket) const;

    /** Current state of a live (not yet wait()ed) ticket. */
    RequestState state(Ticket ticket) const;

    /**
     * Block until terminal, then consume the record and return its
     * outcome. Each ticket may be waited exactly once.
     */
    RequestOutcome wait(Ticket ticket);

    /**
     * Give up on a ticket without collecting its outcome: requests
     * still pending are flagged for cancellation, and the record is
     * reclaimed the moment it retires (immediately if already
     * terminal). A fire-and-forget or cancel-and-forget client must
     * call this (or wait()) for every ticket, or abandoned records
     * accumulate for the scheduler's lifetime. Idempotent; safe on
     * already-consumed tickets.
     */
    void discard(Ticket ticket);

    std::size_t queuedCount() const;
    std::size_t runningCount() const;

    /** Records currently held (pending + terminal-but-uncollected);
     *  serving telemetry and leak tests read this. */
    std::size_t liveRecordCount() const;

    /**
     * Reject new submissions, flag all queued requests for
     * cancellation, and block until no request is Queued or Running
     * (i.e. every executor task has retired its request). Called by
     * ~AsyncPipeline before the pool is destroyed.
     */
    void shutdown();

  private:
    struct Record
    {
        RequestState state = RequestState::Queued;
        bool cancel_requested = false;
        std::shared_ptr<const data::PointCloud> cloud;
        BatchRequest request;
        std::optional<Clock::time_point> deadline;
        RequestTiming timing;
        BatchResult result;
        std::string error;
        std::exception_ptr exception;
        bool spilled = false;
        bool abandoned = false; ///< discard()ed; reclaim on retire
    };

    /** Retire a non-terminal record as Cancelled/Expired/Done/Failed
     *  (mutex held). Drops the cloud reference, wakes waiters, and
     *  erases the record if it was abandoned — callers must not
     *  touch @p record afterwards. */
    void retireLocked(std::uint64_t id, Record &record,
                      RequestState state);

    const Record &recordFor(Ticket ticket) const;

    mutable std::mutex mutex_;

    /** One CV for every sleeper: ticket waiters, blocking submitters,
     *  and shutdown(). Transitions are rare next to the work each
     *  request performs, so sharing costs nothing measurable. */
    mutable std::condition_variable cv_;

    const std::size_t capacity_;
    const unsigned num_threads_;
    const bool work_conserving_;

    std::uint64_t next_id_ = 1;
    std::deque<std::uint64_t> fifo_;
    std::unordered_map<std::uint64_t, Record> records_;
    std::size_t queued_ = 0;
    std::size_t running_ = 0;
    bool shutdown_ = false;
};

} // namespace fc::serve

#endif // FC_SERVE_SCHEDULER_H
