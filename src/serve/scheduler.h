/**
 * @file
 * The serving scheduler: sharded, priority-aware admission with
 * per-request deadlines, cooperative cancellation, and the
 * work-conserving (now cross-shard) spill policy.
 *
 * The Scheduler owns no threads — it is the pure bookkeeping core of
 * fc::serve::AsyncPipeline, which pairs it with a
 * core::ShardedExecutor. Executors interact with it through a narrow
 * protocol:
 *
 *   trySubmit/submitBlocking  admit one request: consistent-hash
 *                             placement picks its shard, its priority
 *                             class picks its queue (bounded;
 *                             trySubmit fails when full),
 *   acquire(shard)            pop the best head of one shard's
 *                             priority queues; requests already
 *                             cancelled or past their deadline are
 *                             retired here without running,
 *   checkpoint                mid-run cancel/deadline probe at stage
 *                             boundaries; retires the request when it
 *                             answers false,
 *   complete/fail             terminal transitions, and
 *   poll/state/wait/waitFor/cancel  the client-facing side.
 *
 * Placement: each request hashes onto a shard via core::ShardMap —
 * by its ticket id by default (spreads uniform traffic evenly), or by
 * a caller-supplied placement key (pins a client/session to one shard
 * so repeated requests keep hitting the same warm workspaces). The
 * mapping is a pure function of (key, shard count): deterministic
 * across runs, stable under shard-count growth for all but ~1/(N+1)
 * of keys. Placement never affects results — every stage is
 * deterministic with respect to its pool — only locality and load.
 *
 * Priority classes with weighted aging: each shard keeps one FIFO per
 * class (Interactive / Batch / Background). Every acquire() first
 * ages all non-empty classes by their weight, then pops the class
 * with the highest accumulated credit (ties to the more interactive
 * class) and zeroes its credit. Backlogged classes therefore share
 * the shard in proportion to their weights (8:4:1), and a Background
 * request under sustained Interactive load is delayed by at most
 * ceil(w_I / w_G) + 1 = 9 pops — aged forward, never starved. Within
 * a class, strict FIFO. A single-class workload (e.g. everything
 * Interactive, the default) degenerates to exactly the PR 2 FIFO.
 *
 * Work-conserving spill, now cross-shard: acquire() marks a request
 * with a spill shard when idle capacity exists — its own shard when
 * in-flight requests there number fewer than the shard's threads,
 * else the lowest-indexed FULLY idle other shard. The executor
 * dispatches the request's intra-cloud block items onto that shard's
 * pool instead of running them inline; one busy shard can therefore
 * borrow a drained neighbor's cores. Only idle neighbors are
 * borrowed because pool workers prefer the fork/join (chunk) lane:
 * foreign chunks on a shard with queued requests of its own would
 * run ahead of them — a priority inversion. checkpoint()
 * re-evaluates the target from scratch at every stage boundary
 * (where all of the request's chunks have joined), so borrows end
 * one stage after the neighbor receives its own work, and freed
 * capacity anywhere is filled one stage later. Every block op is
 * deterministic with respect to its pool, so the decision affects
 * wall-clock only, never results.
 */

#ifndef FC_SERVE_SCHEDULER_H
#define FC_SERVE_SCHEDULER_H

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/metrics.h"
#include "core/pipeline.h"
#include "core/sharded_executor.h"
#include "dataset/point_cloud.h"

namespace fc::serve {

/** Steady clock used for deadlines and latency accounting. */
using Clock = std::chrono::steady_clock;

/** Opaque handle to a submitted request. id 0 is never issued. */
struct Ticket
{
    std::uint64_t id = 0;
};

/** Lifecycle of a request. */
enum class RequestState : std::uint8_t {
    Queued,    ///< admitted, waiting for a worker
    Running,   ///< a worker is processing it
    Done,      ///< finished; outcome carries the result
    Cancelled, ///< retired by cancel() before finishing
    Expired,   ///< retired because its deadline passed
    Failed,    ///< processing threw; outcome carries the message
};

const char *stateName(RequestState state);

/** Done / Cancelled / Expired / Failed. */
bool isTerminal(RequestState state);

/**
 * Admission priority class. Lower value = more interactive. Classes
 * share each shard in proportion to their aging weights; no class
 * can starve (see file comment).
 */
enum class Priority : std::uint8_t {
    Interactive = 0, ///< latency-sensitive foreground traffic
    Batch = 1,       ///< bulk work with throughput targets
    Background = 2,  ///< best-effort (re-indexing, prefetch, ...)
};

inline constexpr unsigned kNumPriorities = 3;

/** Default aging weight per class: relative share of a backlogged
 *  shard. The active weights are runtime-configurable per scheduler
 *  (ServeOptions::priority_weights); this array is only the default. */
inline constexpr std::array<std::uint64_t, kNumPriorities>
    kPriorityWeight = {8, 4, 1};

const char *priorityName(Priority priority);

/** Steady-clock milestones of one request (for latency accounting). */
struct RequestTiming
{
    Clock::time_point submitted;
    Clock::time_point started; ///< == finished for never-run requests
    Clock::time_point finished;
};

/** Terminal outcome of a request, returned once by wait(). */
struct RequestOutcome
{
    RequestState state = RequestState::Cancelled;

    /** Identical to the blocking path's output; valid when Done. */
    BatchResult result;

    /** Exception message; non-empty only when Failed. */
    std::string error;

    /** The original exception, for callers (like runBatch) that want
     *  to rethrow it; non-null only when Failed. */
    std::exception_ptr exception;

    RequestTiming timing;

    /** Class the request was admitted under. */
    Priority priority = Priority::Interactive;

    /** Shard the request was placed on. */
    unsigned shard = 0;

    /** Whether the work-conserving policy spilled this request's
     *  intra-cloud block items onto a pool (its own shard's or a
     *  drained neighbor's) for at least one stage. */
    bool spilled = false;
};

/**
 * One slab slot of the serving outcome pool: a capacity-retaining
 * BatchResult an executor writes into and a waiter copies (waitInto)
 * or moves (wait) out of. Slots are owned and recycled by
 * AsyncPipeline's per-shard pools; the Scheduler only carries the
 * lease from complete() to the consuming wait — the lease rides the
 * ticket. Recycled slots keep every vector's and tensor's capacity,
 * which is what drives warm serve-path allocations to zero.
 */
struct OutcomeSlot
{
    BatchResult result;

    /** Pool the slot recycles into (set once at creation). */
    unsigned owner_shard = 0;
};

/**
 * Growable ring of request ids — the per-(shard x class) FIFO.
 * Capacity doubles on overflow and is never returned (the TaskRing
 * discipline), so steady-state admission pushes and pops without
 * touching the heap.
 */
class IdRing
{
  public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** i-th queued id from the front (shutdown iteration). */
    std::uint64_t
    at(std::size_t i) const
    {
        return slots_[(head_ + i) & mask_];
    }

    std::uint64_t front() const { return slots_[head_]; }

    void
    push_back(std::uint64_t id)
    {
        if (size_ == slots_.size())
            grow();
        slots_[(head_ + size_) & mask_] = id;
        ++size_;
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & mask_;
        --size_;
    }

  private:
    void
    grow()
    {
        const std::size_t capacity =
            std::max<std::size_t>(64, slots_.size() * 2);
        std::vector<std::uint64_t> next(capacity);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = slots_[(head_ + i) & mask_];
        slots_ = std::move(next);
        mask_ = capacity - 1;
        head_ = 0;
    }

    std::vector<std::uint64_t> slots_; ///< power-of-two capacity
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

/**
 * Thread-safe request ledger (see file comment for the protocol).
 *
 * Task/record pairing: executors do not acquire a *specific* request
 * — acquire(shard) hands out the best queued request of that shard
 * under the priority policy. AsyncPipeline enqueues exactly one
 * executor task on shard s's pool per request admitted to shard s,
 * so counts always match even when task and record insertion
 * interleave across submitter threads.
 */
class Scheduler
{
  public:
    /** What an executor needs to process one request. */
    struct Job
    {
        std::uint64_t id = 0;
        std::shared_ptr<const data::PointCloud> cloud;
        BatchRequest request;

        /** Shard this request was placed on (== the acquiring
         *  executor's shard). */
        unsigned shard = 0;

        /** Work-conserving decision; always == (spill_shard >= 0),
         *  kept as a separate field for the single-pool API shape
         *  (both are assigned together in acquire()). */
        bool spill = false;

        /** Shard whose pool should run this request's block items;
         *  negative = run inline. Equals `shard` for a same-shard
         *  spill, another index for a cross-shard borrow. */
        int spill_shard = -1;
    };

    /**
     * @param queue_capacity  max requests waiting (Queued) at once,
     *                        summed over all shards and classes
     * @param num_threads     per-shard pool size the spill policy
     *                        compares with
     * @param work_conserving false pins every request to
     *                        one-cloud-per-thread (spill always off)
     * @param num_shards      executor shards (placement targets)
     * @param priority_weights aging weight per class (> 0 each);
     *                        backlogged classes share a shard in this
     *                        proportion
     * @param registry        when non-null, the scheduler registers
     *                        and maintains its serving telemetry
     *                        (per-(shard x class) queue depth, wait
     *                        and latency histograms, pop/spill/borrow
     *                        and outcome counters) in it; must
     *                        outlive the scheduler
     * @param class_capacity  per-class admission bound layered on
     *                        @p queue_capacity (queued requests of
     *                        class c across all shards; 0 = bounded
     *                        only by the global capacity). Keeps a
     *                        Background flood from crowding
     *                        Interactive out of the queue.
     */
    Scheduler(std::size_t queue_capacity, unsigned num_threads,
              bool work_conserving = true, unsigned num_shards = 1,
              const std::array<std::uint64_t, kNumPriorities>
                  &priority_weights = kPriorityWeight,
              core::metrics::Registry *registry = nullptr,
              const std::array<std::size_t, kNumPriorities>
                  &class_capacity = {});

    /** Active aging weights (runtime-configured at construction). */
    const std::array<std::uint64_t, kNumPriorities> &
    priorityWeights() const
    {
        return weights_;
    }

    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Admit one request. Fails (nullopt) when the queue is at
     * capacity or the scheduler is shutting down.
     *
     * @param deadline relative to now; the request is retired as
     *        Expired if a worker would start or continue it after
     *        submit time + deadline.
     * @param priority admission class (see Priority).
     * @param placement_key 0 = place by ticket id (uniform spread);
     *        any other value is hashed so equal keys land on equal
     *        shards (client/session affinity).
     * @param shard_out when non-null, receives the placement shard —
     *        the caller (AsyncPipeline) needs it to enqueue the
     *        executor task without re-locking for shardOf().
     */
    std::optional<Ticket>
    trySubmit(std::shared_ptr<const data::PointCloud> cloud,
              const BatchRequest &request,
              std::optional<Clock::duration> deadline,
              Priority priority = Priority::Interactive,
              std::uint64_t placement_key = 0,
              unsigned *shard_out = nullptr);

    /** Like trySubmit, but blocks until queue space frees up. Fails
     *  only when the scheduler shuts down while waiting. */
    std::optional<Ticket>
    submitBlocking(std::shared_ptr<const data::PointCloud> cloud,
                   const BatchRequest &request,
                   std::optional<Clock::duration> deadline,
                   Priority priority = Priority::Interactive,
                   std::uint64_t placement_key = 0,
                   unsigned *shard_out = nullptr);

    /** Shard a live (not yet consumed) ticket was placed on. */
    unsigned shardOf(Ticket ticket) const;

    /**
     * Pop the best queued request of @p shard (must be non-empty:
     * one executor task exists per request admitted to the shard).
     * Aging credits are charged and the winning class's head is
     * popped. Returns the job to run, or nullopt when that request
     * was already cancelled or past its deadline — the record is
     * retired (Cancelled/Expired) and the executor has nothing to do.
     */
    std::optional<Job> acquire(unsigned shard = 0);

    /**
     * Mid-run probe, called between stages of a Running request.
     * Returns true to continue; false means the request was just
     * retired (Cancelled or Expired) and the executor must stop.
     *
     * When continuing and @p spill is non-null, the work-conserving
     * decision is re-evaluated from scratch into it (and, when
     * @p spill_shard is non-null, the chosen shard): a request
     * acquired at saturation starts spilling once capacity frees up
     * anywhere, a borrowed neighbor is released once it has work of
     * its own, and a saturated pool stops being fought over. Safe to
     * change per stage — at a boundary every chunk of the request
     * has already joined.
     */
    bool checkpoint(std::uint64_t id, bool *spill = nullptr,
                    int *spill_shard = nullptr);

    /** Terminal transition: the request finished with @p result.
     *  (Value form, used by bare-scheduler callers; the serving
     *  pipeline completes with a pooled OutcomeSlot instead.) */
    void complete(std::uint64_t id, BatchResult result);

    /**
     * Terminal transition with a pooled payload: @p slot holds the
     * finished BatchResult and its lease transfers to the record —
     * it rides the ticket until the consuming wait()/waitInto()
     * (which recycles it through the recycler installed by
     * setOutcomeRecycler) or, for abandoned/discarded tickets, until
     * retirement reclaims the record. @p slot must stay valid until
     * then (AsyncPipeline owns the slab storage).
     */
    void complete(std::uint64_t id, OutcomeSlot *slot);

    /**
     * Install the slot-return hook (called once, before any
     * slot-completed request is consumed). Invoked under the
     * scheduler mutex; must not call back into the scheduler.
     */
    void setOutcomeRecycler(std::function<void(OutcomeSlot *)> recycler);

    /** Terminal transition: processing threw @p exception. */
    void fail(std::uint64_t id, std::exception_ptr exception);

    /**
     * Request cancellation. Queued work is retired when its executor
     * task pops it; running work stops at its next checkpoint().
     * Returns false when the request already reached a terminal
     * state (or the ticket was consumed by wait()).
     *
     * true means "cancellation requested", not "will not complete":
     * a request past its last stage checkpoint still retires Done,
     * so callers must branch on the terminal state from wait(), not
     * on cancel()'s return value.
     */
    bool cancel(Ticket ticket);

    /** True once the request is in a terminal state. */
    bool poll(Ticket ticket) const;

    /** Current state of a live (not yet wait()ed) ticket. */
    RequestState state(Ticket ticket) const;

    /**
     * Block until terminal, then consume the record and return its
     * outcome. Each ticket may be waited exactly once.
     */
    RequestOutcome wait(Ticket ticket);

    /**
     * Allocation-free consumption: like wait(), but the outcome is
     * written into @p out, whose payload vectors/tensors reuse their
     * capacity — a warm same-shape round trip (submitShared ->
     * waitInto with a reused RequestOutcome) performs zero heap
     * allocations end to end. The pooled slot is copied from and
     * recycled warm, so the pipeline's next request reuses its
     * capacity too; @p out never aliases pool memory.
     */
    void waitInto(Ticket ticket, RequestOutcome &out);

    /**
     * Bounded wait: block up to @p timeout for the request to reach
     * a terminal state. On success the record is consumed exactly as
     * by wait(); on timeout returns nullopt and the ticket stays
     * live — the request keeps its queue position (or keeps
     * running), and the caller may wait again, cancel, or discard.
     */
    std::optional<RequestOutcome> waitFor(Ticket ticket,
                                          Clock::duration timeout);

    /**
     * Give up on a ticket without collecting its outcome: requests
     * still pending are flagged for cancellation, and the record is
     * reclaimed the moment it retires (immediately if already
     * terminal). A fire-and-forget or cancel-and-forget client must
     * call this (or wait()) for every ticket, or abandoned records
     * accumulate for the scheduler's lifetime. Idempotent; safe on
     * already-consumed tickets.
     */
    void discard(Ticket ticket);

    std::size_t queuedCount() const;
    std::size_t runningCount() const;

    /** Per-shard counters (serving telemetry, shard-balance tests). */
    std::size_t queuedCount(unsigned shard) const;
    std::size_t runningCount(unsigned shard) const;

    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Records currently held (pending + terminal-but-uncollected);
     *  serving telemetry and leak tests read this. */
    std::size_t liveRecordCount() const;

    /**
     * Reject new submissions, flag all queued requests for
     * cancellation, and block until no request is Queued or Running
     * (i.e. every executor task has retired its request). Called by
     * ~AsyncPipeline before the pools are destroyed.
     */
    void shutdown();

  private:
    struct Record
    {
        RequestState state = RequestState::Queued;
        bool cancel_requested = false;
        std::shared_ptr<const data::PointCloud> cloud;
        BatchRequest request;
        std::optional<Clock::time_point> deadline;
        RequestTiming timing;
        BatchResult result;
        std::string error;
        std::exception_ptr exception;
        Priority priority = Priority::Interactive;
        unsigned shard = 0;
        int spill_shard = -1;   ///< current spill pool (-1 = inline)
        bool spilled = false;   ///< spilled for at least one stage
        bool abandoned = false; ///< discard()ed; reclaim on retire

        /** Pooled payload lease (Done via the slot overload only);
         *  recycled when the record is reclaimed. */
        OutcomeSlot *slot = nullptr;

        /** Return to a just-constructed state while KEEPING the
         *  capacity of request, result, and error — recycled records
         *  make the next admission allocation-free. */
        void
        reset()
        {
            state = RequestState::Queued;
            cancel_requested = false;
            cloud.reset();
            // `request` and `result` keep their buffers: the next
            // submit copy-assigns over them.
            deadline.reset();
            timing = RequestTiming{};
            error.clear();
            exception = nullptr;
            spill_shard = -1;
            spilled = false;
            abandoned = false;
            slot = nullptr;
        }
    };

    /** Queues, aging credits, and in-flight counters of one shard. */
    struct ShardState
    {
        std::array<IdRing, kNumPriorities> queues;
        std::array<std::uint64_t, kNumPriorities> credit{};
        std::size_t queued = 0;
        std::size_t running = 0;
    };

    /** Instruments of one (shard, class) cell; null without a
     *  registry. Mutated under mutex_ (the instruments themselves are
     *  lock-free; the lock is the scheduler's own). */
    struct ClassMetrics
    {
        core::metrics::Gauge *queue_depth = nullptr;
        core::metrics::Histogram *queue_depth_hist = nullptr;
        core::metrics::Histogram *wait_us = nullptr;
        core::metrics::Histogram *latency_us = nullptr;
        core::metrics::Counter *pops = nullptr;
        core::metrics::Counter *submitted = nullptr;
        core::metrics::Counter *completed = nullptr;
        core::metrics::Counter *expired = nullptr;
        core::metrics::Counter *cancelled = nullptr;
        core::metrics::Counter *failed = nullptr;
    };

    /** Per-shard instrument block. */
    struct ShardMetrics
    {
        std::array<ClassMetrics, kNumPriorities> classes;
        core::metrics::Counter *spill_same = nullptr;
        core::metrics::Counter *borrow_out = nullptr;
        core::metrics::Counter *borrow_in = nullptr;
    };

    /** Retire a non-terminal record as Cancelled/Expired/Done/Failed
     *  (mutex held). Drops the cloud reference, wakes waiters, and
     *  erases the record if it was abandoned — callers must not
     *  touch @p record afterwards. */
    void retireLocked(std::uint64_t id, Record &record,
                      RequestState state);

    /** Work-conserving target for a request on @p shard (mutex
     *  held): own shard if it has idle threads, else a FULLY idle
     *  other shard — the one with the fewest active borrowers,
     *  lowest index on ties — else -1. Merely under-loaded
     *  neighbors are never borrowed (see file comment: priority
     *  inversion). */
    int spillShardLocked(unsigned shard) const;

    /** Point @p record's spill target at @p target (mutex held),
     *  keeping the per-shard borrow counters and the ever-spilled
     *  flag in sync. Every spill_shard transition goes through
     *  here — acquire, checkpoint, and retirement. */
    void assignSpillLocked(Record &record, int target);

    /** Consume a terminal record into @p out (mutex held): the
     *  payload is copied from the pooled slot when @p copy_payload
     *  (slot and @p out both stay warm — the zero-alloc path) or
     *  moved out otherwise, then the record is reclaimed. */
    void consumeIntoLocked(std::uint64_t id, Record &record,
                           RequestOutcome &out, bool copy_payload);

    /** Take @p id's record out of the ledger (mutex held): recycle
     *  its outcome slot (if still leased), reset() it
     *  capacity-retaining, and stash the map node for the next
     *  admission. Every record leaving records_ goes through here —
     *  warm steady state never touches the map's allocator. */
    void reclaimRecordLocked(std::uint64_t id);

    const Record &recordFor(Ticket ticket) const;

    mutable std::mutex mutex_;

    /** One CV for every sleeper: ticket waiters, blocking submitters,
     *  and shutdown(). Transitions are rare next to the work each
     *  request performs, so sharing costs nothing measurable. */
    mutable std::condition_variable cv_;

    const std::size_t capacity_;
    const unsigned num_threads_;
    const bool work_conserving_;
    const std::array<std::uint64_t, kNumPriorities> weights_;

    /** Per-class admission bounds (0 = global bound only). */
    const std::array<std::size_t, kNumPriorities> class_capacity_;

    /** Queued requests per class, summed over shards (the counters
     *  the class bounds compare against). */
    std::array<std::size_t, kNumPriorities> class_queued_{};

    /** Per-class admission rejections due to a class bound; null
     *  without a registry. */
    std::array<core::metrics::Counter *, kNumPriorities>
        rejected_class_{};

    core::ShardMap shard_map_;
    std::vector<ShardState> shards_;

    /** One instrument block per shard; empty without a registry. */
    std::vector<ShardMetrics> metrics_;

    /** Active cross-shard borrowers per shard (requests currently
     *  spilling their chunks onto it from another shard); spreads
     *  concurrent borrows over idle shards instead of piling them
     *  onto the lowest index. */
    std::vector<std::size_t> borrows_;

    std::uint64_t next_id_ = 1;
    std::unordered_map<std::uint64_t, Record> records_;

    /** Reclaimed map nodes (capacity-retaining Records inside);
     *  trySubmit re-keys and re-inserts these instead of allocating.
     *  Depth tracks the high-water mark of concurrently live
     *  tickets. */
    std::vector<std::unordered_map<std::uint64_t, Record>::node_type>
        record_nodes_;

    /** Slot-return hook into AsyncPipeline's per-shard pools; must
     *  be installed before the first slot-completed consumption. */
    std::function<void(OutcomeSlot *)> outcome_recycler_;

    std::size_t queued_ = 0;
    std::size_t running_ = 0;
    bool shutdown_ = false;
};

} // namespace fc::serve

#endif // FC_SERVE_SCHEDULER_H
