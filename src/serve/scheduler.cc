#include "serve/scheduler.h"

#include "common/logging.h"

namespace fc::serve {

const char *
stateName(RequestState state)
{
    switch (state) {
      case RequestState::Queued:
        return "queued";
      case RequestState::Running:
        return "running";
      case RequestState::Done:
        return "done";
      case RequestState::Cancelled:
        return "cancelled";
      case RequestState::Expired:
        return "expired";
      case RequestState::Failed:
        return "failed";
    }
    return "unknown";
}

bool
isTerminal(RequestState state)
{
    return state != RequestState::Queued &&
           state != RequestState::Running;
}

const char *
priorityName(Priority priority)
{
    switch (priority) {
      case Priority::Interactive:
        return "interactive";
      case Priority::Batch:
        return "batch";
      case Priority::Background:
        return "background";
    }
    return "unknown";
}

namespace {

/** Microseconds between two steady-clock points (never negative). */
std::uint64_t
usBetween(Clock::time_point from, Clock::time_point to)
{
    if (to <= from)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(to - from)
            .count());
}

/** "serve.<base>{shard=<s>,class=<name>}" — the registry's flat-name
 *  label convention, built once per instrument at registration. */
std::string
cellName(const char *base, unsigned shard, unsigned cls)
{
    std::string name = "serve.";
    name += base;
    name += "{shard=";
    name += std::to_string(shard);
    name += ",class=";
    name += priorityName(static_cast<Priority>(cls));
    name += '}';
    return name;
}

std::string
shardName(const char *base, unsigned shard)
{
    std::string name = "serve.";
    name += base;
    name += "{shard=";
    name += std::to_string(shard);
    name += '}';
    return name;
}

} // namespace

Scheduler::Scheduler(
    std::size_t queue_capacity, unsigned num_threads,
    bool work_conserving, unsigned num_shards,
    const std::array<std::uint64_t, kNumPriorities> &priority_weights,
    core::metrics::Registry *registry,
    const std::array<std::size_t, kNumPriorities> &class_capacity)
    : capacity_(queue_capacity), num_threads_(num_threads),
      work_conserving_(work_conserving), weights_(priority_weights),
      class_capacity_(class_capacity), shard_map_(num_shards),
      shards_(num_shards), borrows_(num_shards, 0)
{
    fc_assert(capacity_ > 0, "scheduler needs a positive capacity");
    fc_assert(num_threads_ > 0, "scheduler needs a positive pool size");
    fc_assert(num_shards >= 1, "scheduler needs at least one shard");
    for (unsigned c = 0; c < kNumPriorities; ++c)
        fc_assert(weights_[c] > 0,
                  "priority weight for class %s must be positive",
                  priorityName(static_cast<Priority>(c)));
    if (registry == nullptr)
        return;

    // Register the full instrument matrix up front: every later
    // mutation is a pointer dereference, no name lookups (and no
    // allocations) on the serving path.
    metrics_.resize(num_shards);
    for (unsigned s = 0; s < num_shards; ++s) {
        ShardMetrics &sm = metrics_[s];
        for (unsigned c = 0; c < kNumPriorities; ++c) {
            ClassMetrics &cm = sm.classes[c];
            cm.queue_depth =
                &registry->gauge(cellName("queue_depth", s, c));
            cm.queue_depth_hist =
                &registry->histogram(cellName("queue_depth_hist", s, c));
            cm.wait_us = &registry->histogram(cellName("wait_us", s, c));
            cm.latency_us =
                &registry->histogram(cellName("latency_us", s, c));
            cm.pops = &registry->counter(cellName("pops", s, c));
            cm.submitted =
                &registry->counter(cellName("submitted", s, c));
            cm.completed =
                &registry->counter(cellName("completed", s, c));
            cm.expired = &registry->counter(cellName("expired", s, c));
            cm.cancelled =
                &registry->counter(cellName("cancelled", s, c));
            cm.failed = &registry->counter(cellName("failed", s, c));
        }
        sm.spill_same = &registry->counter(shardName("spill_same", s));
        sm.borrow_out = &registry->counter(shardName("borrow_out", s));
        sm.borrow_in = &registry->counter(shardName("borrow_in", s));
    }
    // The active aging weights, surfaced so operators (and tests) can
    // read the runtime configuration off /stats.
    for (unsigned c = 0; c < kNumPriorities; ++c)
        registry
            ->gauge(std::string("serve.priority_weight{class=") +
                    priorityName(static_cast<Priority>(c)) + "}")
            .forceSet(static_cast<std::int64_t>(weights_[c]));
    // Per-class admission bounds and their rejection counters
    // (global, not per shard: a class bound is checked before
    // placement matters).
    for (unsigned c = 0; c < kNumPriorities; ++c) {
        const std::string cls =
            priorityName(static_cast<Priority>(c));
        rejected_class_[c] = &registry->counter(
            "serve.rejected_class{class=" + cls + "}");
        registry->gauge("serve.class_capacity{class=" + cls + "}")
            .forceSet(static_cast<std::int64_t>(class_capacity_[c]));
    }
}

Scheduler::~Scheduler()
{
    // AsyncPipeline::~AsyncPipeline calls shutdown() first; a bare
    // Scheduler (unit tests) has no executors to wait for, but any
    // still-live request here would mean a protocol violation.
    fc_assert(running_ == 0,
              "scheduler destroyed with %zu requests running",
              running_);
}

std::optional<Ticket>
Scheduler::trySubmit(std::shared_ptr<const data::PointCloud> cloud,
                     const BatchRequest &request,
                     std::optional<Clock::duration> deadline,
                     Priority priority, std::uint64_t placement_key,
                     unsigned *shard_out)
{
    fc_assert(cloud != nullptr && !cloud->empty(),
              "serve requests need a non-empty cloud");
    fc_assert(request.neighbors > 0, "serve requests need neighbors > 0");
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ || queued_ >= capacity_)
        return std::nullopt;
    const unsigned cls = static_cast<unsigned>(priority);
    // Per-class bound, layered on the global one: a Background flood
    // fills its own allowance and bounces, leaving Interactive's
    // share of the queue free.
    if (class_capacity_[cls] != 0 &&
        class_queued_[cls] >= class_capacity_[cls]) {
        if (rejected_class_[cls] != nullptr)
            rejected_class_[cls]->add();
        return std::nullopt;
    }

    const Clock::time_point now = Clock::now();
    const std::uint64_t id = next_id_++;
    // Consistent-hash placement: ticket id by default (uniform
    // spread), caller key for affinity. A 1-shard map short-circuits
    // to shard 0 — the PR 2 path.
    const unsigned shard = shard_map_.shardFor(
        placement_key != 0 ? placement_key : id);

    // Recycle a reclaimed map node when one exists: re-keying and
    // re-inserting reuses both the node and the Record's buffers, so
    // warm admission never touches the heap.
    Record *slot_record;
    if (!record_nodes_.empty()) {
        auto nh = std::move(record_nodes_.back());
        record_nodes_.pop_back();
        nh.key() = id;
        slot_record = &records_.insert(std::move(nh)).position->second;
    } else {
        slot_record = &records_[id];
    }
    Record &record = *slot_record;
    record.cloud = std::move(cloud);
    record.request = request;
    if (deadline)
        record.deadline = now + *deadline;
    record.timing.submitted = now;
    record.priority = priority;
    record.shard = shard;

    ShardState &st = shards_[shard];
    st.queues[cls].push_back(id);
    ++st.queued;
    ++queued_;
    ++class_queued_[cls];
    if (!metrics_.empty()) {
        ClassMetrics &cm = metrics_[shard].classes[cls];
        cm.submitted->add();
        const std::uint64_t depth = st.queues[cls].size();
        cm.queue_depth->set(static_cast<std::int64_t>(depth));
        cm.queue_depth_hist->record(depth);
    }
    if (shard_out != nullptr)
        *shard_out = shard;
    return Ticket{id};
}

std::optional<Ticket>
Scheduler::submitBlocking(std::shared_ptr<const data::PointCloud> cloud,
                          const BatchRequest &request,
                          std::optional<Clock::duration> deadline,
                          Priority priority, std::uint64_t placement_key,
                          unsigned *shard_out)
{
    // A freed slot can be stolen between the wait and trySubmit;
    // loop until admission sticks (rare: only other submitters
    // compete).
    for (;;) {
        std::optional<Ticket> ticket =
            trySubmit(cloud, request, deadline, priority,
                      placement_key, shard_out);
        if (ticket)
            return ticket;
        std::unique_lock<std::mutex> lock(mutex_);
        if (shutdown_)
            return std::nullopt;
        const unsigned cls = static_cast<unsigned>(priority);
        cv_.wait(lock, [this, cls] {
            return shutdown_ ||
                   (queued_ < capacity_ &&
                    (class_capacity_[cls] == 0 ||
                     class_queued_[cls] < class_capacity_[cls]));
        });
    }
}

unsigned
Scheduler::shardOf(Ticket ticket) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recordFor(ticket).shard;
}

void
Scheduler::retireLocked(std::uint64_t id, Record &record,
                        RequestState state)
{
    assignSpillLocked(record, -1); // release any cross-shard borrow
    record.state = state;
    record.timing.finished = Clock::now();
    if (record.timing.started == Clock::time_point{})
        record.timing.started = record.timing.finished;
    if (!metrics_.empty()) {
        ClassMetrics &cm =
            metrics_[record.shard]
                .classes[static_cast<unsigned>(record.priority)];
        switch (state) {
          case RequestState::Done:
            cm.completed->add();
            cm.latency_us->record(usBetween(record.timing.submitted,
                                            record.timing.finished));
            break;
          case RequestState::Expired:
            cm.expired->add();
            break;
          case RequestState::Cancelled:
            cm.cancelled->add();
            break;
          case RequestState::Failed:
            cm.failed->add();
            break;
          default:
            break;
        }
    }
    record.cloud.reset(); // free the input as soon as possible
    if (record.abandoned)
        reclaimRecordLocked(id); // discard()ed: nobody will wait()
    cv_.notify_all();
}

int
Scheduler::spillShardLocked(unsigned shard) const
{
    if (!work_conserving_)
        return -1;
    const auto inflight = [this](unsigned s) {
        return shards_[s].queued + shards_[s].running;
    };
    // Own shard first: with fewer requests in flight than threads,
    // whole requests cannot saturate it, so this request should fan
    // its block items out onto the idle slots.
    if (inflight(shard) < num_threads_)
        return static_cast<int>(shard);
    // Cross-shard borrow: only a FULLY idle neighbor. A merely
    // under-loaded neighbor is never borrowed: its workers prefer
    // the fork/join lane, so foreign chunks would run ahead of its
    // own queued requests — a priority inversion against whatever
    // class waits there. Idle shards have nothing to invert, and
    // the decision is re-evaluated at every stage boundary, so a
    // borrow ends one stage after the neighbor receives work of its
    // own. Among idle shards, take the one with the fewest active
    // borrowers (lowest index on ties) — request in-flight counters
    // don't see borrowed chunks, so without this concurrent
    // borrowers would all pile onto the lowest index.
    int best = -1;
    std::size_t best_borrows = 0;
    for (unsigned t = 0; t < shards_.size(); ++t) {
        if (t == shard || inflight(t) != 0)
            continue;
        if (best < 0 || borrows_[t] < best_borrows) {
            best = static_cast<int>(t);
            best_borrows = borrows_[t];
        }
    }
    return best;
}

void
Scheduler::assignSpillLocked(Record &record, int target)
{
    if (record.spill_shard == target)
        return;
    const int home = static_cast<int>(record.shard);
    if (record.spill_shard >= 0 && record.spill_shard != home)
        --borrows_[record.spill_shard];
    record.spill_shard = target;
    if (target >= 0 && target != home)
        ++borrows_[target];
    record.spilled = record.spilled || target >= 0;
    if (!metrics_.empty() && target >= 0) {
        // Spill/borrow telemetry counts TRANSITIONS onto a target
        // (the early-return above dedups per-stage re-decisions that
        // kept the same target): same-shard fan-out on the home
        // shard, cross-shard borrows on both ends.
        if (target == home) {
            metrics_[record.shard].spill_same->add();
        } else {
            metrics_[record.shard].borrow_out->add();
            metrics_[static_cast<unsigned>(target)].borrow_in->add();
        }
    }
}

std::optional<Scheduler::Job>
Scheduler::acquire(unsigned shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    fc_assert(shard < shards_.size(), "acquire on unknown shard %u",
              shard);
    ShardState &st = shards_[shard];
    fc_assert(st.queued > 0,
              "acquire with no queued request on shard %u "
              "(task/record mismatch)",
              shard);

    // Weighted aging: every non-empty class earns its weight per
    // pop; the richest class wins (ties to the more interactive
    // one) and its credit resets. Classes whose queue drained reset
    // too — credit models the waiting requests, not the class.
    // Weights are the runtime configuration passed at construction
    // (default kPriorityWeight = 8:4:1).
    unsigned chosen = 0;
    std::uint64_t best_credit = 0;
    bool have = false;
    for (unsigned c = 0; c < kNumPriorities; ++c) {
        if (st.queues[c].empty()) {
            st.credit[c] = 0;
            continue;
        }
        st.credit[c] += weights_[c];
        if (!have || st.credit[c] > best_credit) {
            have = true;
            chosen = c;
            best_credit = st.credit[c];
        }
    }
    fc_assert(have, "shard %u queued counter out of sync", shard);
    st.credit[chosen] = 0;

    const std::uint64_t id = st.queues[chosen].front();
    st.queues[chosen].pop_front();
    --st.queued;
    --queued_;
    --class_queued_[chosen];
    if (!metrics_.empty()) {
        ClassMetrics &cm = metrics_[shard].classes[chosen];
        cm.pops->add();
        cm.queue_depth->set(
            static_cast<std::int64_t>(st.queues[chosen].size()));
    }
    cv_.notify_all(); // queue space freed for blocking submitters

    Record &record = records_.at(id);
    const Clock::time_point now = Clock::now();
    if (record.cancel_requested) {
        retireLocked(id, record, RequestState::Cancelled);
        return std::nullopt;
    }
    if (record.deadline && now > *record.deadline) {
        retireLocked(id, record, RequestState::Expired);
        return std::nullopt;
    }

    record.state = RequestState::Running;
    record.timing.started = now;
    ++st.running;
    ++running_;
    if (!metrics_.empty())
        metrics_[shard]
            .classes[static_cast<unsigned>(record.priority)]
            .wait_us->record(usBetween(record.timing.submitted, now));
    assignSpillLocked(record, spillShardLocked(shard));

    Job job;
    job.id = id;
    job.cloud = record.cloud;
    job.request = record.request;
    job.shard = shard;
    job.spill_shard = record.spill_shard;
    job.spill = record.spill_shard >= 0;
    return job;
}

bool
Scheduler::checkpoint(std::uint64_t id, bool *spill, int *spill_shard)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Record &record = records_.at(id);
    fc_assert(record.state == RequestState::Running,
              "checkpoint on a request in state %s",
              stateName(record.state));
    if (record.cancel_requested) {
        --shards_[record.shard].running;
        --running_;
        retireLocked(id, record, RequestState::Cancelled);
        return false;
    }
    if (record.deadline && Clock::now() > *record.deadline) {
        --shards_[record.shard].running;
        --running_;
        retireLocked(id, record, RequestState::Expired);
        return false;
    }
    if (spill != nullptr) {
        // Re-evaluate the work-conserving decision from scratch: at
        // a stage boundary every TaskGroup has joined, so no chunk
        // of this request is in flight anywhere and the target can
        // change freely. Capacity freed since the last stage — here
        // or on a neighbor — gets filled; a borrowed neighbor that
        // received its own work is released; a pool that saturated
        // stops being fought over.
        assignSpillLocked(record, spillShardLocked(record.shard));
        *spill = record.spill_shard >= 0;
        if (spill_shard != nullptr)
            *spill_shard = record.spill_shard;
    }
    return true;
}

void
Scheduler::complete(std::uint64_t id, BatchResult result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Record &record = records_.at(id);
    fc_assert(record.state == RequestState::Running,
              "complete on a request in state %s",
              stateName(record.state));
    record.result = std::move(result);
    --shards_[record.shard].running;
    --running_;
    retireLocked(id, record, RequestState::Done);
}

void
Scheduler::complete(std::uint64_t id, OutcomeSlot *slot)
{
    fc_assert(slot != nullptr, "complete with a null outcome slot");
    std::lock_guard<std::mutex> lock(mutex_);
    fc_assert(outcome_recycler_ != nullptr,
              "slot-completed request without an outcome recycler");
    Record &record = records_.at(id);
    fc_assert(record.state == RequestState::Running,
              "complete on a request in state %s",
              stateName(record.state));
    record.slot = slot; // lease rides the ticket until consumption
    --shards_[record.shard].running;
    --running_;
    retireLocked(id, record, RequestState::Done);
}

void
Scheduler::setOutcomeRecycler(
    std::function<void(OutcomeSlot *)> recycler)
{
    std::lock_guard<std::mutex> lock(mutex_);
    fc_assert(outcome_recycler_ == nullptr,
              "outcome recycler installed twice");
    outcome_recycler_ = std::move(recycler);
}

void
Scheduler::fail(std::uint64_t id, std::exception_ptr exception)
{
    // Derive the message outside the lock (rethrowing is the only
    // portable way to read an exception_ptr).
    std::string error = "unknown exception";
    try {
        std::rethrow_exception(exception);
    } catch (const std::exception &e) {
        error = e.what();
    } catch (...) {
    }

    std::lock_guard<std::mutex> lock(mutex_);
    Record &record = records_.at(id);
    fc_assert(record.state == RequestState::Running,
              "fail on a request in state %s", stateName(record.state));
    record.error = std::move(error);
    record.exception = exception;
    --shards_[record.shard].running;
    --running_;
    retireLocked(id, record, RequestState::Failed);
}

bool
Scheduler::cancel(Ticket ticket)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(ticket.id);
    if (it == records_.end() || isTerminal(it->second.state))
        return false;
    it->second.cancel_requested = true;
    return true;
}

const Scheduler::Record &
Scheduler::recordFor(Ticket ticket) const
{
    auto it = records_.find(ticket.id);
    fc_assert(it != records_.end(),
              "unknown or already-consumed ticket %llu",
              static_cast<unsigned long long>(ticket.id));
    return it->second;
}

bool
Scheduler::poll(Ticket ticket) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return isTerminal(recordFor(ticket).state);
}

RequestState
Scheduler::state(Ticket ticket) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recordFor(ticket).state;
}

void
Scheduler::consumeIntoLocked(std::uint64_t id, Record &record,
                             RequestOutcome &out, bool copy_payload)
{
    out.state = record.state;
    if (record.slot != nullptr) {
        if (copy_payload) {
            // Capacity-reusing copy on BOTH sides: the caller's warm
            // outcome keeps its buffers, and the slot recycles warm
            // for the next request — the zero-alloc round trip.
            out.result = record.slot->result;
        } else {
            // Value wait: the caller takes ownership; the slot
            // recycles gutted and regrows on its next use.
            out.result = std::move(record.slot->result);
        }
    } else {
        out.result = std::move(record.result);
    }
    out.error = std::move(record.error);
    out.exception = record.exception;
    out.timing = record.timing;
    out.priority = record.priority;
    out.shard = record.shard;
    out.spilled = record.spilled;
    reclaimRecordLocked(id);
}

void
Scheduler::reclaimRecordLocked(std::uint64_t id)
{
    auto nh = records_.extract(id);
    fc_assert(!nh.empty(), "reclaim of unknown record %llu",
              static_cast<unsigned long long>(id));
    Record &record = nh.mapped();
    if (record.slot != nullptr)
        outcome_recycler_(record.slot); // pool mutex is a leaf lock
    record.reset();
    record_nodes_.push_back(std::move(nh));
}

RequestOutcome
Scheduler::wait(Ticket ticket)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = records_.find(ticket.id);
    fc_assert(it != records_.end(),
              "wait on unknown or already-consumed ticket %llu",
              static_cast<unsigned long long>(ticket.id));
    // Hold a pointer, not the iterator: concurrent submissions can
    // rehash records_ while we sleep, which invalidates iterators but
    // never element references (the map is node-based).
    Record *record = &it->second;
    cv_.wait(lock, [record] { return isTerminal(record->state); });
    RequestOutcome outcome;
    consumeIntoLocked(ticket.id, *record, outcome,
                      /*copy_payload=*/false);
    return outcome;
}

void
Scheduler::waitInto(Ticket ticket, RequestOutcome &out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = records_.find(ticket.id);
    fc_assert(it != records_.end(),
              "waitInto on unknown or already-consumed ticket %llu",
              static_cast<unsigned long long>(ticket.id));
    Record *record = &it->second;
    cv_.wait(lock, [record] { return isTerminal(record->state); });
    consumeIntoLocked(ticket.id, *record, out, /*copy_payload=*/true);
}

std::optional<RequestOutcome>
Scheduler::waitFor(Ticket ticket, Clock::duration timeout)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = records_.find(ticket.id);
    fc_assert(it != records_.end(),
              "waitFor on unknown or already-consumed ticket %llu",
              static_cast<unsigned long long>(ticket.id));
    Record *record = &it->second;
    if (!cv_.wait_for(lock, timeout, [record] {
            return isTerminal(record->state);
        }))
        return std::nullopt; // still pending; the ticket stays live
    std::optional<RequestOutcome> outcome(std::in_place);
    consumeIntoLocked(ticket.id, *record, *outcome,
                      /*copy_payload=*/false);
    return outcome;
}

void
Scheduler::discard(Ticket ticket)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(ticket.id);
    if (it == records_.end())
        return; // already consumed by wait() or a prior discard
    Record &record = it->second;
    if (isTerminal(record.state)) {
        reclaimRecordLocked(ticket.id);
        return;
    }
    record.cancel_requested = true; // stop undone work early
    record.abandoned = true;        // reclaim at retirement
}

std::size_t
Scheduler::liveRecordCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
}

std::size_t
Scheduler::queuedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_;
}

std::size_t
Scheduler::runningCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return running_;
}

std::size_t
Scheduler::queuedCount(unsigned shard) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    fc_assert(shard < shards_.size(), "queuedCount on unknown shard %u",
              shard);
    return shards_[shard].queued;
}

std::size_t
Scheduler::runningCount(unsigned shard) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    fc_assert(shard < shards_.size(),
              "runningCount on unknown shard %u", shard);
    return shards_[shard].running;
}

void
Scheduler::shutdown()
{
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
    for (ShardState &st : shards_)
        for (const IdRing &queue : st.queues)
            for (std::size_t i = 0; i < queue.size(); ++i)
                records_.at(queue.at(i)).cancel_requested = true;
    cv_.notify_all();
    // Every queued request still has an executor task that will pop
    // (and then instantly retire) it; running ones finish or stop at
    // their next checkpoint. When both counters reach zero, no
    // executor task remains in any shard's pool queue.
    cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

} // namespace fc::serve
