#include "serve/scheduler.h"

#include "common/logging.h"

namespace fc::serve {

const char *
stateName(RequestState state)
{
    switch (state) {
      case RequestState::Queued:
        return "queued";
      case RequestState::Running:
        return "running";
      case RequestState::Done:
        return "done";
      case RequestState::Cancelled:
        return "cancelled";
      case RequestState::Expired:
        return "expired";
      case RequestState::Failed:
        return "failed";
    }
    return "unknown";
}

bool
isTerminal(RequestState state)
{
    return state != RequestState::Queued &&
           state != RequestState::Running;
}

Scheduler::Scheduler(std::size_t queue_capacity, unsigned num_threads,
                     bool work_conserving)
    : capacity_(queue_capacity), num_threads_(num_threads),
      work_conserving_(work_conserving)
{
    fc_assert(capacity_ > 0, "scheduler needs a positive capacity");
    fc_assert(num_threads_ > 0, "scheduler needs a positive pool size");
}

Scheduler::~Scheduler()
{
    // AsyncPipeline::~AsyncPipeline calls shutdown() first; a bare
    // Scheduler (unit tests) has no executors to wait for, but any
    // still-live request here would mean a protocol violation.
    fc_assert(running_ == 0,
              "scheduler destroyed with %zu requests running",
              running_);
}

std::optional<Ticket>
Scheduler::trySubmit(std::shared_ptr<const data::PointCloud> cloud,
                     const BatchRequest &request,
                     std::optional<Clock::duration> deadline)
{
    fc_assert(cloud != nullptr && !cloud->empty(),
              "serve requests need a non-empty cloud");
    fc_assert(request.neighbors > 0, "serve requests need neighbors > 0");
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ || queued_ >= capacity_)
        return std::nullopt;

    const Clock::time_point now = Clock::now();
    const std::uint64_t id = next_id_++;
    Record &record = records_[id];
    record.cloud = std::move(cloud);
    record.request = request;
    if (deadline)
        record.deadline = now + *deadline;
    record.timing.submitted = now;
    fifo_.push_back(id);
    ++queued_;
    return Ticket{id};
}

std::optional<Ticket>
Scheduler::submitBlocking(std::shared_ptr<const data::PointCloud> cloud,
                          const BatchRequest &request,
                          std::optional<Clock::duration> deadline)
{
    // A freed slot can be stolen between the wait and trySubmit;
    // loop until admission sticks (rare: only other submitters
    // compete).
    for (;;) {
        std::optional<Ticket> ticket =
            trySubmit(cloud, request, deadline);
        if (ticket)
            return ticket;
        std::unique_lock<std::mutex> lock(mutex_);
        if (shutdown_)
            return std::nullopt;
        cv_.wait(lock, [this] {
            return shutdown_ || queued_ < capacity_;
        });
    }
}

void
Scheduler::retireLocked(std::uint64_t id, Record &record,
                        RequestState state)
{
    record.state = state;
    record.timing.finished = Clock::now();
    if (record.timing.started == Clock::time_point{})
        record.timing.started = record.timing.finished;
    record.cloud.reset(); // free the input as soon as possible
    if (record.abandoned)
        records_.erase(id); // discard()ed: nobody will wait()
    cv_.notify_all();
}

std::optional<Scheduler::Job>
Scheduler::acquire()
{
    std::lock_guard<std::mutex> lock(mutex_);
    fc_assert(!fifo_.empty(),
              "acquire with no queued request (task/record mismatch)");
    const std::uint64_t id = fifo_.front();
    fifo_.pop_front();
    --queued_;
    cv_.notify_all(); // queue space freed for blocking submitters

    Record &record = records_.at(id);
    const Clock::time_point now = Clock::now();
    if (record.cancel_requested) {
        retireLocked(id, record, RequestState::Cancelled);
        return std::nullopt;
    }
    if (record.deadline && now > *record.deadline) {
        retireLocked(id, record, RequestState::Expired);
        return std::nullopt;
    }

    record.state = RequestState::Running;
    record.timing.started = now;
    ++running_;
    // Work-conserving spill: with fewer requests in flight than pool
    // threads, whole requests cannot saturate the pool, so this
    // request should fan its block items out onto the idle slots.
    record.spilled =
        work_conserving_ && queued_ + running_ < num_threads_;

    Job job;
    job.id = id;
    job.cloud = record.cloud;
    job.request = record.request;
    job.spill = record.spilled;
    return job;
}

bool
Scheduler::checkpoint(std::uint64_t id, bool *spill)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Record &record = records_.at(id);
    fc_assert(record.state == RequestState::Running,
              "checkpoint on a request in state %s",
              stateName(record.state));
    if (record.cancel_requested) {
        --running_;
        retireLocked(id, record, RequestState::Cancelled);
        return false;
    }
    if (record.deadline && Clock::now() > *record.deadline) {
        --running_;
        retireLocked(id, record, RequestState::Expired);
        return false;
    }
    if (spill != nullptr) {
        // Refresh the work-conserving decision (sticky upward): the
        // pool may have drained since acquire, freeing slots this
        // request's remaining stages should fill.
        record.spilled =
            record.spilled ||
            (work_conserving_ && queued_ + running_ < num_threads_);
        *spill = record.spilled;
    }
    return true;
}

void
Scheduler::complete(std::uint64_t id, BatchResult result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Record &record = records_.at(id);
    fc_assert(record.state == RequestState::Running,
              "complete on a request in state %s",
              stateName(record.state));
    record.result = std::move(result);
    --running_;
    retireLocked(id, record, RequestState::Done);
}

void
Scheduler::fail(std::uint64_t id, std::exception_ptr exception)
{
    // Derive the message outside the lock (rethrowing is the only
    // portable way to read an exception_ptr).
    std::string error = "unknown exception";
    try {
        std::rethrow_exception(exception);
    } catch (const std::exception &e) {
        error = e.what();
    } catch (...) {
    }

    std::lock_guard<std::mutex> lock(mutex_);
    Record &record = records_.at(id);
    fc_assert(record.state == RequestState::Running,
              "fail on a request in state %s", stateName(record.state));
    record.error = std::move(error);
    record.exception = exception;
    --running_;
    retireLocked(id, record, RequestState::Failed);
}

bool
Scheduler::cancel(Ticket ticket)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(ticket.id);
    if (it == records_.end() || isTerminal(it->second.state))
        return false;
    it->second.cancel_requested = true;
    return true;
}

const Scheduler::Record &
Scheduler::recordFor(Ticket ticket) const
{
    auto it = records_.find(ticket.id);
    fc_assert(it != records_.end(),
              "unknown or already-consumed ticket %llu",
              static_cast<unsigned long long>(ticket.id));
    return it->second;
}

bool
Scheduler::poll(Ticket ticket) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return isTerminal(recordFor(ticket).state);
}

RequestState
Scheduler::state(Ticket ticket) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recordFor(ticket).state;
}

RequestOutcome
Scheduler::wait(Ticket ticket)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = records_.find(ticket.id);
    fc_assert(it != records_.end(),
              "wait on unknown or already-consumed ticket %llu",
              static_cast<unsigned long long>(ticket.id));
    // Hold a pointer, not the iterator: concurrent submissions can
    // rehash records_ while we sleep, which invalidates iterators but
    // never element references (the map is node-based).
    Record *record = &it->second;
    cv_.wait(lock, [record] { return isTerminal(record->state); });

    RequestOutcome outcome;
    outcome.state = record->state;
    outcome.result = std::move(record->result);
    outcome.error = std::move(record->error);
    outcome.exception = record->exception;
    outcome.timing = record->timing;
    outcome.spilled = record->spilled;
    records_.erase(ticket.id);
    return outcome;
}

void
Scheduler::discard(Ticket ticket)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(ticket.id);
    if (it == records_.end())
        return; // already consumed by wait() or a prior discard
    Record &record = it->second;
    if (isTerminal(record.state)) {
        records_.erase(it);
        return;
    }
    record.cancel_requested = true; // stop undone work early
    record.abandoned = true;        // reclaim at retirement
}

std::size_t
Scheduler::liveRecordCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
}

std::size_t
Scheduler::queuedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_;
}

std::size_t
Scheduler::runningCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return running_;
}

void
Scheduler::shutdown()
{
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
    for (const std::uint64_t id : fifo_)
        records_.at(id).cancel_requested = true;
    cv_.notify_all();
    // Every queued request still has an executor task that will pop
    // (and then instantly retire) it; running ones finish or stop at
    // their next checkpoint. When both counters reach zero, no
    // executor task remains in the pool queue.
    cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

} // namespace fc::serve
