/**
 * @file
 * serve::StorageIngestor — feed an .fcpc file through the
 * AsyncPipeline.
 *
 * The ingestion path the storage layer exists for: blocks stream out
 * of a BlockPrefetcher (mmap + read-ahead, so disk latency overlaps
 * compute) and into AsyncPipeline::submit (moved in — the mapping
 * keepalive rides inside each zero-copy cloud), each submitted under
 * the placement key stored in the file's index.
 * The pipeline hashes that key through the same consistent-hash
 * ShardMap the prefetcher exposes, so a block lands on the shard
 * that owns its key — prefetch, placement, and processing agree on
 * WHERE without agreeing on WHEN.
 *
 * Results are byte-identical to submitting preloaded in-memory
 * clouds: the zero-copy cloud aliases the same bytes the writer
 * serialized, every pipeline stage is deterministic, and placement
 * never changes WHAT a request computes. The equality tests in
 * tests/test_storage.cc hold this across shard counts {1, 2, 4} and
 * prefetch on/off.
 *
 * Metrics (in the pipeline's registry, rendered by serve/stats.h):
 *   serve.ingest.blocks        blocks submitted
 *   serve.ingest.bytes         section bytes submitted
 *   serve.ingest.errors        blocks refused by the reader
 *   serve.ingest.prefetch_hits get() served from a completed read
 *   serve.ingest.prefetch_waits get() waited on an in-flight read
 */

#ifndef FC_SERVE_INGEST_H
#define FC_SERVE_INGEST_H

#include <memory>
#include <optional>
#include <vector>

#include "serve/async_pipeline.h"
#include "storage/prefetch.h"

namespace fc::serve {

/** Configuration of one ingestion run. */
struct IngestOptions
{
    /** Read-ahead depth; 0 = synchronous loads (prefetch off). */
    std::size_t prefetch_depth = 4;

    /** Threads of the ingestor's private I/O pool (distinct from the
     *  pipeline's compute shards so a slow disk never steals compute
     *  slots). Ignored when prefetch_depth == 0. */
    unsigned io_threads = 1;

    /** Zero-copy by default; Copy forces owning clouds (e.g. when
     *  the file must be replaced while requests are in flight). */
    storage::ReadMode mode = storage::ReadMode::ZeroCopy;

    /** Admission class for ingested blocks. Batch by default:
     *  ingestion is throughput traffic and must not crowd
     *  interactive requests. */
    Priority priority = Priority::Batch;

    /** Optional per-block deadline (relative, as in submit()). */
    std::optional<Clock::duration> deadline;
};

/** Outcome of one ingested block. */
struct IngestResult
{
    /** Reader verdict; the block was submitted only when Ok. */
    storage::FcpcStatus storage_status = storage::FcpcStatus::Ok;

    /** Pipeline outcome; meaningful only when storage_status is
     *  Ok. */
    RequestOutcome outcome;
};

/**
 * Streams every block of one open .fcpc reader through a pipeline.
 * Construct per file; runAll() may be called repeatedly (e.g. one
 * epoch per call).
 */
class StorageIngestor
{
  public:
    StorageIngestor(AsyncPipeline &pipeline,
                    std::shared_ptr<storage::FcpcReader> reader,
                    const IngestOptions &options = {});
    ~StorageIngestor();

    StorageIngestor(const StorageIngestor &) = delete;
    StorageIngestor &operator=(const StorageIngestor &) = delete;

    /**
     * Submit every block in index order under @p request and wait
     * for all outcomes. Blocks that fail their checksum (or any
     * other reader verdict) are reported in their slot, never
     * submitted, and never abort the run — ingestion of a damaged
     * file delivers every intact block.
     */
    std::vector<IngestResult> runAll(const BatchRequest &request = {});

    /** Prefetch telemetry of the underlying ring. */
    storage::PrefetchStats prefetchStats() const;

  private:
    AsyncPipeline &pipeline_;
    std::shared_ptr<storage::FcpcReader> reader_;
    IngestOptions options_;

    /** Private I/O pool (standalone: it hosts detached read tasks);
     *  null when prefetch is off. Declared before the prefetcher —
     *  the prefetcher's destructor drains tasks running here. */
    std::unique_ptr<core::ThreadPool> io_pool_;
    std::unique_ptr<storage::BlockPrefetcher> prefetcher_;

    core::metrics::Counter *blocks_ = nullptr;
    core::metrics::Counter *bytes_ = nullptr;
    core::metrics::Counter *errors_ = nullptr;
    core::metrics::Counter *prefetch_hits_ = nullptr;
    core::metrics::Counter *prefetch_waits_ = nullptr;
};

} // namespace fc::serve

#endif // FC_SERVE_INGEST_H
