/**
 * @file
 * fc::serve::AsyncPipeline — the asynchronous serving frontend.
 *
 * FractalCloudPipeline::runBatch is a blocking call. This layer turns
 * the library into a service skeleton:
 *
 *   - submit()/trySubmit() admit one cloud each into a bounded,
 *     priority-classed admission queue and return a Ticket
 *     immediately; trySubmit rejects (nullopt) when the queue is
 *     full. Each request lands on one executor shard by consistent
 *     hashing (ticket id, or a caller placement key for session
 *     affinity) and in one of three priority classes (Interactive /
 *     Batch / Background) that share each shard 8:4:1 under weighted
 *     aging — bulk traffic cannot starve, interactive traffic keeps
 *     its tail,
 *   - poll()/state()/wait()/waitFor() observe a ticket; wait()
 *     blocks for and consumes the terminal RequestOutcome, waitFor()
 *     bounds the block without cancelling,
 *   - per-request deadlines retire late work as Expired the moment a
 *     worker would otherwise start — or, between stages, continue —
 *     it,
 *   - cancel() retires queued work without running it and interrupts
 *     running work at its next stage boundary, and
 *   - the work-conserving Scheduler spills a request's intra-cloud
 *     block items (partition subtrees, block-wise FPS / neighbor /
 *     gather) into idle pool slots — its own shard's when in-flight
 *     requests there number fewer than the shard's threads, else a
 *     drained neighbor shard's; otherwise requests run
 *     one-per-thread. The decision is re-evaluated at every stage
 *     boundary, so the last big request of a batch starts spilling
 *     once its peers finish, and
 *   - per-SHARD free-list pools of core::Workspace instances, one
 *     checked out per ticket on its placement shard: every request's
 *     intermediates (partition trees, op scratch, the inference
 *     stage's per-level buffers) draw from a workspace warmed by
 *     earlier requests OF THE SAME SHARD, so with pinned workers a
 *     workspace's pages stay on the NUMA node that touched them.
 *     Cross-shard spill borrows a neighbor's COMPUTE only — the
 *     workspace always belongs to the home shard's pool. Each pool
 *     never exceeds its shard's thread count, so steady-state memory
 *     is bounded by the largest shapes seen, and
 *   - a slab-recycled outcome pool (also per shard): the BatchResult
 *     payload itself lives in a pooled OutcomeSlot whose lease rides
 *     the ticket from complete() to the consuming wait. waitInto()
 *     copies capacity-into-capacity and recycles the slot warm, so a
 *     warm same-shape submit -> poll -> waitInto round trip performs
 *     ZERO heap allocations end to end (value-returning wait() moves
 *     the payload out instead and the slot regrows on next use).
 *
 * Results are byte-identical to the blocking path at any thread
 * count: every stage is deterministic with respect to its pool, so
 * scheduling decisions affect wall-clock only.
 *
 * Each request runs the serving stage sequence of runBatch:
 * partition -> block-wise FPS -> ball query -> gather, producing the
 * same BatchResult — plus an optional end-to-end inference stage
 * (BatchRequest::network), whose pool-driven nn::Network::run also
 * spills its internal work items under the same policy.
 */

#ifndef FC_SERVE_ASYNC_PIPELINE_H
#define FC_SERVE_ASYNC_PIPELINE_H

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/metrics.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/sharded_executor.h"
#include "core/workspace.h"
#include "serve/scheduler.h"

namespace fc::serve {

/** Stage boundaries of one request, in execution order. */
enum class Stage : std::uint8_t {
    Started,     ///< acquired by a worker, before partitioning
    Partitioned, ///< partition built
    Sampled,     ///< block-wise FPS done
    Grouped,     ///< ball query done
};

const char *stageName(Stage stage);

/** Configuration of an AsyncPipeline. */
struct ServeOptions
{
    /** Partition method/threshold plus num_threads, which sizes each
     *  executor shard's pool (0 = hardware). Unlike the blocking
     *  pipeline, num_threads = 1 still spawns one background worker
     *  per shard — requests are processed asynchronously but, within
     *  a shard and a priority class, strictly FIFO, with results
     *  identical to the sequential path. */
    PipelineOptions pipeline;

    /**
     * Executor shards. 1 (the default) is the single-pool runtime of
     * PR 2-4, unchanged. With N > 1, requests are placed onto shards
     * by consistent hashing (ticket id, or the submit call's
     * placement key for session affinity); each shard has its own
     * num_threads-sized pool and queues, and the work-conserving
     * policy may borrow an idle neighbor shard for a busy request's
     * block items. Results are byte-identical at any shard count.
     */
    unsigned num_shards = 1;

    /** Admission-queue bound: max requests waiting to start, summed
     *  over all shards and priority classes. */
    std::size_t queue_capacity = 64;

    /** Enable the work-conserving spill policy. false = always
     *  one-cloud-per-thread (the PR 1 runBatch dispatch). */
    bool work_conserving = true;

    /**
     * Aging weight per priority class
     * (Interactive : Batch : Background), each > 0. Backlogged
     * classes share every shard in this proportion; the default is
     * the historical 8:4:1. Runtime-configurable so deployments can
     * retune fairness without rebuilding — the active weights are
     * surfaced in /stats (serve.priority_weight{class=...}).
     */
    std::array<std::uint64_t, kNumPriorities> priority_weights =
        kPriorityWeight;

    /**
     * Pin each shard's workers to a disjoint cpu set carved from the
     * detected NUMA topology (shard s prefers node s % nodes; see
     * core/topology.h), keeping a shard's workspace and arena pages
     * on the socket that touches them. Best-effort: refused affinity
     * calls (restricted runners, non-Linux) degrade to unpinned
     * workers, and FC_NO_PIN=1 disables pinning at runtime without a
     * rebuild. Never affects results, only locality.
     */
    bool pin_shards = true;

    /**
     * Route each ticket's workspace checkout through its placement
     * shard's own free list (the NUMA-local policy described in the
     * file comment). false collapses all checkouts onto one shared
     * pool — the pre-shard-local behavior, kept as an A/B lever for
     * benchmarks (bench_shard_scaling compares both). Results are
     * identical either way.
     */
    bool shard_local_workspaces = true;

    /**
     * Per-class admission bounds layered on queue_capacity: at most
     * class_capacity[c] requests of class c may be queued at once
     * across all shards (0 = bounded only by queue_capacity). Keeps
     * a Background flood from crowding Interactive out of the
     * admission queue; rejections count in
     * serve.rejected_class{class=...}.
     */
    std::array<std::size_t, kNumPriorities> class_capacity{};

    /**
     * Test/telemetry hook: invoked on the executing worker at every
     * stage boundary of every request, just before that boundary's
     * cancel/deadline checkpoint (so a cancel() issued while the
     * observer runs is honored). Must be thread-safe; leave empty
     * for production use.
     */
    std::function<void(Ticket, Stage)> stage_observer;
};

/**
 * Asynchronous submit/poll/wait serving frontend over a
 * core::ShardedExecutor of standalone ThreadPool shards
 * (ServeOptions::num_shards = 1 collapses to the single-pool
 * frontend of PR 2-4, unchanged).
 *
 * Thread-safe: any thread may submit, poll, cancel, or wait. The
 * destructor rejects new work, cancels everything still queued, and
 * blocks until in-flight requests retire — do not race submissions
 * against destruction.
 */
class AsyncPipeline
{
  public:
    explicit AsyncPipeline(const ServeOptions &options = {});
    ~AsyncPipeline();

    AsyncPipeline(const AsyncPipeline &) = delete;
    AsyncPipeline &operator=(const AsyncPipeline &) = delete;

    /**
     * Admit one cloud; returns nullopt when the admission queue is
     * full (the request is rejected, not queued). @p deadline is
     * relative to now; late work is retired as Expired instead of
     * running.
     *
     * @p priority picks the admission class (see serve::Priority):
     * backlogged classes share each shard 8:4:1
     * (Interactive:Batch:Background) under weighted aging, so bulk
     * traffic cannot starve and interactive traffic keeps its tail.
     * @p placement_key pins placement: 0 spreads requests over
     * shards by ticket id; any fixed key (session id, client id)
     * lands all its requests on one shard's warm workspaces.
     *
     * The cloud is moved into the call and dropped on rejection —
     * retry-with-backoff loops should use trySubmitShared, which
     * keeps one shared cloud alive across attempts instead of
     * re-copying (or losing) it.
     *
     * Admission allocates (the request record + queue node); the
     * allocation-free guarantee covers the *processing* of warm
     * same-shape requests, not the submit call itself. Results are
     * deterministic: a given (cloud, request) pair produces the same
     * BatchResult regardless of shard, class, or concurrency.
     */
    std::optional<Ticket>
    trySubmit(data::PointCloud cloud, const BatchRequest &request = {},
              std::optional<Clock::duration> deadline = std::nullopt,
              Priority priority = Priority::Interactive,
              std::uint64_t placement_key = 0);

    /** Blocking admission: waits for queue space instead of
     *  rejecting. */
    Ticket
    submit(data::PointCloud cloud, const BatchRequest &request = {},
           std::optional<Clock::duration> deadline = std::nullopt,
           Priority priority = Priority::Interactive,
           std::uint64_t placement_key = 0);

    /**
     * Zero-copy variants for callers that manage cloud lifetime
     * themselves (e.g. runBatch aliases its input vector): the cloud
     * must stay alive until the ticket retires.
     */
    std::optional<Ticket>
    trySubmitShared(std::shared_ptr<const data::PointCloud> cloud,
                    const BatchRequest &request = {},
                    std::optional<Clock::duration> deadline = std::nullopt,
                    Priority priority = Priority::Interactive,
                    std::uint64_t placement_key = 0);
    Ticket
    submitShared(std::shared_ptr<const data::PointCloud> cloud,
                 const BatchRequest &request = {},
                 std::optional<Clock::duration> deadline = std::nullopt,
                 Priority priority = Priority::Interactive,
                 std::uint64_t placement_key = 0);

    /** True once the ticket reached a terminal state. */
    bool poll(Ticket ticket) const { return scheduler_.poll(ticket); }

    /** Current state of a live (not yet wait()ed) ticket. */
    RequestState
    state(Ticket ticket) const
    {
        return scheduler_.state(ticket);
    }

    /** Block until terminal; consumes the ticket. */
    RequestOutcome wait(Ticket ticket) { return scheduler_.wait(ticket); }

    /**
     * Allocation-free wait: consume the ticket into @p out, reusing
     * @p out's payload capacity and recycling the pooled result slot
     * warm. A warm same-shape submitShared -> waitInto loop with a
     * reused RequestOutcome performs zero heap allocations on the
     * serve path (bench_memory_churn gates this at exactly 0).
     */
    void
    waitInto(Ticket ticket, RequestOutcome &out)
    {
        scheduler_.waitInto(ticket, out);
    }

    /**
     * Bounded wait: block up to @p timeout. On success the outcome
     * is returned and the ticket consumed, exactly as by wait(); on
     * timeout returns nullopt and the ticket stays live — the
     * request is NOT cancelled (it keeps its queue position or keeps
     * running), and the caller may wait again, cancel, or discard.
     */
    std::optional<RequestOutcome>
    waitFor(Ticket ticket, Clock::duration timeout)
    {
        return scheduler_.waitFor(ticket, timeout);
    }

    /** Best-effort cancel; true = requested, not guaranteed — the
     *  request may still retire Done (see Scheduler::cancel). */
    bool cancel(Ticket ticket) { return scheduler_.cancel(ticket); }

    /**
     * Give up on a ticket without collecting its outcome (its record
     * is reclaimed once the request retires). Every ticket must end
     * in exactly one wait() or discard() — cancel() alone does not
     * free the bookkeeping. See Scheduler::discard.
     */
    void discard(Ticket ticket) { scheduler_.discard(ticket); }

    /** Resolved per-shard pool size. */
    unsigned numThreads() const { return executor_.threadsPerShard(); }

    /** Executor shard count. */
    unsigned numShards() const { return executor_.numShards(); }

    /** Whether shard workers are actually pinned (pin_shards was set,
     *  FC_NO_PIN is unset, and a topology was detected). */
    bool pinned() const { return executor_.pinned(); }

    /** Snapshot of requests admitted but not yet started (all
     *  shards). Allocation-free; racy by nature — use for telemetry,
     *  not control flow. */
    std::size_t queuedCount() const { return scheduler_.queuedCount(); }

    /** Snapshot of requests currently executing (all shards).
     *  Allocation-free; racy by nature. */
    std::size_t runningCount() const
    {
        return scheduler_.runningCount();
    }

    /** Per-shard telemetry. */
    std::size_t
    queuedCount(unsigned shard) const
    {
        return scheduler_.queuedCount(shard);
    }
    std::size_t
    runningCount(unsigned shard) const
    {
        return scheduler_.runningCount(shard);
    }

    /**
     * Workspaces created so far, summed over shards (telemetry):
     * stops growing once every concurrent executor has one —
     * sequential same-shape traffic reports 1, proving warm reuse.
     */
    std::size_t workspacesCreated() const;

    /** Workspaces created by @p shard's pool alone: flat per shard
     *  under steady per-shard concurrency, proving checkouts never
     *  migrate across pools. */
    std::size_t workspacesCreated(unsigned shard) const;

    /** Outcome slots created so far, summed over shards: bounded by
     *  the number of concurrently un-consumed tickets. */
    std::size_t outcomeSlotsCreated() const;

    /**
     * The pipeline's metrics registry: per-(shard x class) queue
     * depth / wait / latency instruments (Scheduler), per-stage
     * latency histograms and admission/workspace telemetry (this
     * class), per-shard executor task counts (ShardedExecutor), and
     * the inference stage's per-stage nn timings. Render it with
     * serve::renderStats / renderStatsJson (serve/stats.h); mutation
     * cost is governed by core::metrics::setSampling.
     */
    core::metrics::Registry &metrics() { return registry_; }
    const core::metrics::Registry &metrics() const { return registry_; }

    /** Records held (pending + terminal-but-uncollected). */
    std::size_t liveRecordCount() const
    {
        return scheduler_.liveRecordCount();
    }

  private:
    /** A pooled workspace tagged with the shard whose pool owns it:
     *  check-in always routes back to the owner, wherever the lease
     *  ends up (foreign returns are counted — a tripwire, since the
     *  executor task itself never migrates off its home shard). */
    struct ShardWorkspace
    {
        core::Workspace ws;
        unsigned owner = 0;
    };

    /**
     * One shard's memory pools plus their instruments: the workspace
     * free list (intermediates) and the outcome slab (result
     * payloads, leased to the scheduler from complete() until the
     * consuming wait). The pool mutex is a LEAF lock — taken under
     * the scheduler mutex by the recycler, so pool code must never
     * call back into the scheduler.
     */
    struct ShardPool
    {
        std::mutex mutex;
        std::vector<std::unique_ptr<ShardWorkspace>> ws_free;
        std::size_t ws_created = 0;

        /** Every slot this shard ever created (ownership; outlives
         *  any lease) and the subset currently free. */
        std::vector<std::unique_ptr<OutcomeSlot>> outcome_all;
        std::vector<OutcomeSlot *> outcome_free;

        core::metrics::Counter *checkout = nullptr;
        core::metrics::Gauge *created = nullptr;
        core::metrics::Counter *foreign_return = nullptr;
        core::metrics::Counter *outcome_checkout = nullptr;
        core::metrics::Gauge *outcome_created = nullptr;
    };

    /** Executor task body: process (or retire) the best queued
     *  request of @p shard. */
    void execute(unsigned shard);

    void notifyObserver(std::uint64_t id, Stage stage);

    /** Pop a warm workspace from @p shard's pool (reset) or create
     *  one (first-seen per-shard concurrency). With
     *  shard_local_workspaces off, every shard routes to pool 0. */
    std::unique_ptr<ShardWorkspace> checkoutWorkspace(unsigned shard);

    /** Return @p ws to its OWNER's free list; @p returning_shard only
     *  feeds the foreign-return tripwire counter. */
    void checkinWorkspace(std::unique_ptr<ShardWorkspace> ws,
                          unsigned returning_shard);

    /** Pop a warm outcome slot from @p shard's slab (or grow it). */
    OutcomeSlot *checkoutOutcome(unsigned shard);

    /** Return a slot to its owner's slab, capacity intact. Installed
     *  as the scheduler's recycler (called under its mutex). */
    void recycleOutcome(OutcomeSlot *slot);

    ServeOptions options_;

    /**
     * Declared first deliberately: every layer below (executor,
     * scheduler, this class's own instruments) holds pointers into
     * the registry until its workers join, so the registry must be
     * destroyed last.
     */
    core::metrics::Registry registry_;

    /** Per-stage service-time histograms (serve.stage_us{stage=...}),
     *  recorded on the executing worker between stage boundaries. */
    std::array<core::metrics::Histogram *, 5> stage_us_{};

    /** Admission rejections (trySubmit returning nullopt). */
    core::metrics::Counter *rejected_ = nullptr;

    /** Aggregate workspace telemetry, kept for /stats compatibility:
     *  the counter sums checkouts over all shards; the gauge mirrors
     *  workspacesCreated(). Per-shard instruments live in pools_. */
    core::metrics::Counter *ws_checkouts_ = nullptr;
    core::metrics::Gauge *ws_created_gauge_ = nullptr;

    /** Pool-creation totals across shards (atomic: creations on
     *  different shards race only on these). */
    std::atomic<std::size_t> ws_created_total_{0};
    std::atomic<std::size_t> outcomes_created_total_{0};

    /** Declared before executor_ and scheduler_ deliberately: an
     *  executor task returns its workspace lease as its very last
     *  action, and the scheduler's recycler returns outcome slots
     *  during shutdown — ~AsyncPipeline retires all requests, the
     *  shard pools join their workers, and only after both may the
     *  pools die. unique_ptr elements keep each ShardPool's mutex at
     *  a stable address. */
    std::vector<std::unique_ptr<ShardPool>> pools_;

    core::ShardedExecutor executor_;
    Scheduler scheduler_;
};

} // namespace fc::serve

#endif // FC_SERVE_ASYNC_PIPELINE_H
