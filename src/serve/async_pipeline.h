/**
 * @file
 * fc::serve::AsyncPipeline — the asynchronous serving frontend.
 *
 * FractalCloudPipeline::runBatch is a blocking call. This layer turns
 * the library into a service skeleton:
 *
 *   - submit()/trySubmit() admit one cloud each into a bounded,
 *     priority-classed admission queue and return a Ticket
 *     immediately; trySubmit rejects (nullopt) when the queue is
 *     full. Each request lands on one executor shard by consistent
 *     hashing (ticket id, or a caller placement key for session
 *     affinity) and in one of three priority classes (Interactive /
 *     Batch / Background) that share each shard 8:4:1 under weighted
 *     aging — bulk traffic cannot starve, interactive traffic keeps
 *     its tail,
 *   - poll()/state()/wait()/waitFor() observe a ticket; wait()
 *     blocks for and consumes the terminal RequestOutcome, waitFor()
 *     bounds the block without cancelling,
 *   - per-request deadlines retire late work as Expired the moment a
 *     worker would otherwise start — or, between stages, continue —
 *     it,
 *   - cancel() retires queued work without running it and interrupts
 *     running work at its next stage boundary, and
 *   - the work-conserving Scheduler spills a request's intra-cloud
 *     block items (partition subtrees, block-wise FPS / neighbor /
 *     gather) into idle pool slots — its own shard's when in-flight
 *     requests there number fewer than the shard's threads, else a
 *     drained neighbor shard's; otherwise requests run
 *     one-per-thread. The decision is re-evaluated at every stage
 *     boundary, so the last big request of a batch starts spilling
 *     once its peers finish, and
 *   - a free-list pool of core::Workspace instances, one checked out
 *     per ticket: every request's intermediates (partition trees,
 *     op scratch, the inference stage's per-level buffers) draw from
 *     a workspace warmed by earlier requests, so repeated same-shape
 *     requests stop allocating intermediates entirely — the heap is
 *     touched only for the result payload handed to the client.
 *     The pool never exceeds the executor count (= shards x threads
 *     per shard), so steady-state memory is bounded by the largest
 *     shapes seen.
 *
 * Results are byte-identical to the blocking path at any thread
 * count: every stage is deterministic with respect to its pool, so
 * scheduling decisions affect wall-clock only.
 *
 * Each request runs the serving stage sequence of runBatch:
 * partition -> block-wise FPS -> ball query -> gather, producing the
 * same BatchResult — plus an optional end-to-end inference stage
 * (BatchRequest::network), whose pool-driven nn::Network::run also
 * spills its internal work items under the same policy.
 */

#ifndef FC_SERVE_ASYNC_PIPELINE_H
#define FC_SERVE_ASYNC_PIPELINE_H

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/metrics.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/sharded_executor.h"
#include "core/workspace.h"
#include "serve/scheduler.h"

namespace fc::serve {

/** Stage boundaries of one request, in execution order. */
enum class Stage : std::uint8_t {
    Started,     ///< acquired by a worker, before partitioning
    Partitioned, ///< partition built
    Sampled,     ///< block-wise FPS done
    Grouped,     ///< ball query done
};

const char *stageName(Stage stage);

/** Configuration of an AsyncPipeline. */
struct ServeOptions
{
    /** Partition method/threshold plus num_threads, which sizes each
     *  executor shard's pool (0 = hardware). Unlike the blocking
     *  pipeline, num_threads = 1 still spawns one background worker
     *  per shard — requests are processed asynchronously but, within
     *  a shard and a priority class, strictly FIFO, with results
     *  identical to the sequential path. */
    PipelineOptions pipeline;

    /**
     * Executor shards. 1 (the default) is the single-pool runtime of
     * PR 2-4, unchanged. With N > 1, requests are placed onto shards
     * by consistent hashing (ticket id, or the submit call's
     * placement key for session affinity); each shard has its own
     * num_threads-sized pool and queues, and the work-conserving
     * policy may borrow an idle neighbor shard for a busy request's
     * block items. Results are byte-identical at any shard count.
     */
    unsigned num_shards = 1;

    /** Admission-queue bound: max requests waiting to start, summed
     *  over all shards and priority classes. */
    std::size_t queue_capacity = 64;

    /** Enable the work-conserving spill policy. false = always
     *  one-cloud-per-thread (the PR 1 runBatch dispatch). */
    bool work_conserving = true;

    /**
     * Aging weight per priority class
     * (Interactive : Batch : Background), each > 0. Backlogged
     * classes share every shard in this proportion; the default is
     * the historical 8:4:1. Runtime-configurable so deployments can
     * retune fairness without rebuilding — the active weights are
     * surfaced in /stats (serve.priority_weight{class=...}).
     */
    std::array<std::uint64_t, kNumPriorities> priority_weights =
        kPriorityWeight;

    /**
     * Test/telemetry hook: invoked on the executing worker at every
     * stage boundary of every request, just before that boundary's
     * cancel/deadline checkpoint (so a cancel() issued while the
     * observer runs is honored). Must be thread-safe; leave empty
     * for production use.
     */
    std::function<void(Ticket, Stage)> stage_observer;
};

/**
 * Asynchronous submit/poll/wait serving frontend over a
 * core::ShardedExecutor of standalone ThreadPool shards
 * (ServeOptions::num_shards = 1 collapses to the single-pool
 * frontend of PR 2-4, unchanged).
 *
 * Thread-safe: any thread may submit, poll, cancel, or wait. The
 * destructor rejects new work, cancels everything still queued, and
 * blocks until in-flight requests retire — do not race submissions
 * against destruction.
 */
class AsyncPipeline
{
  public:
    explicit AsyncPipeline(const ServeOptions &options = {});
    ~AsyncPipeline();

    AsyncPipeline(const AsyncPipeline &) = delete;
    AsyncPipeline &operator=(const AsyncPipeline &) = delete;

    /**
     * Admit one cloud; returns nullopt when the admission queue is
     * full (the request is rejected, not queued). @p deadline is
     * relative to now; late work is retired as Expired instead of
     * running.
     *
     * @p priority picks the admission class (see serve::Priority):
     * backlogged classes share each shard 8:4:1
     * (Interactive:Batch:Background) under weighted aging, so bulk
     * traffic cannot starve and interactive traffic keeps its tail.
     * @p placement_key pins placement: 0 spreads requests over
     * shards by ticket id; any fixed key (session id, client id)
     * lands all its requests on one shard's warm workspaces.
     *
     * The cloud is moved into the call and dropped on rejection —
     * retry-with-backoff loops should use trySubmitShared, which
     * keeps one shared cloud alive across attempts instead of
     * re-copying (or losing) it.
     *
     * Admission allocates (the request record + queue node); the
     * allocation-free guarantee covers the *processing* of warm
     * same-shape requests, not the submit call itself. Results are
     * deterministic: a given (cloud, request) pair produces the same
     * BatchResult regardless of shard, class, or concurrency.
     */
    std::optional<Ticket>
    trySubmit(data::PointCloud cloud, const BatchRequest &request = {},
              std::optional<Clock::duration> deadline = std::nullopt,
              Priority priority = Priority::Interactive,
              std::uint64_t placement_key = 0);

    /** Blocking admission: waits for queue space instead of
     *  rejecting. */
    Ticket
    submit(data::PointCloud cloud, const BatchRequest &request = {},
           std::optional<Clock::duration> deadline = std::nullopt,
           Priority priority = Priority::Interactive,
           std::uint64_t placement_key = 0);

    /**
     * Zero-copy variants for callers that manage cloud lifetime
     * themselves (e.g. runBatch aliases its input vector): the cloud
     * must stay alive until the ticket retires.
     */
    std::optional<Ticket>
    trySubmitShared(std::shared_ptr<const data::PointCloud> cloud,
                    const BatchRequest &request = {},
                    std::optional<Clock::duration> deadline = std::nullopt,
                    Priority priority = Priority::Interactive,
                    std::uint64_t placement_key = 0);
    Ticket
    submitShared(std::shared_ptr<const data::PointCloud> cloud,
                 const BatchRequest &request = {},
                 std::optional<Clock::duration> deadline = std::nullopt,
                 Priority priority = Priority::Interactive,
                 std::uint64_t placement_key = 0);

    /** True once the ticket reached a terminal state. */
    bool poll(Ticket ticket) const { return scheduler_.poll(ticket); }

    /** Current state of a live (not yet wait()ed) ticket. */
    RequestState
    state(Ticket ticket) const
    {
        return scheduler_.state(ticket);
    }

    /** Block until terminal; consumes the ticket. */
    RequestOutcome wait(Ticket ticket) { return scheduler_.wait(ticket); }

    /**
     * Bounded wait: block up to @p timeout. On success the outcome
     * is returned and the ticket consumed, exactly as by wait(); on
     * timeout returns nullopt and the ticket stays live — the
     * request is NOT cancelled (it keeps its queue position or keeps
     * running), and the caller may wait again, cancel, or discard.
     */
    std::optional<RequestOutcome>
    waitFor(Ticket ticket, Clock::duration timeout)
    {
        return scheduler_.waitFor(ticket, timeout);
    }

    /** Best-effort cancel; true = requested, not guaranteed — the
     *  request may still retire Done (see Scheduler::cancel). */
    bool cancel(Ticket ticket) { return scheduler_.cancel(ticket); }

    /**
     * Give up on a ticket without collecting its outcome (its record
     * is reclaimed once the request retires). Every ticket must end
     * in exactly one wait() or discard() — cancel() alone does not
     * free the bookkeeping. See Scheduler::discard.
     */
    void discard(Ticket ticket) { scheduler_.discard(ticket); }

    /** Resolved per-shard pool size. */
    unsigned numThreads() const { return executor_.threadsPerShard(); }

    /** Executor shard count. */
    unsigned numShards() const { return executor_.numShards(); }

    /** Snapshot of requests admitted but not yet started (all
     *  shards). Allocation-free; racy by nature — use for telemetry,
     *  not control flow. */
    std::size_t queuedCount() const { return scheduler_.queuedCount(); }

    /** Snapshot of requests currently executing (all shards).
     *  Allocation-free; racy by nature. */
    std::size_t runningCount() const
    {
        return scheduler_.runningCount();
    }

    /** Per-shard telemetry. */
    std::size_t
    queuedCount(unsigned shard) const
    {
        return scheduler_.queuedCount(shard);
    }
    std::size_t
    runningCount(unsigned shard) const
    {
        return scheduler_.runningCount(shard);
    }

    /**
     * Workspaces created so far (telemetry): stops growing once every
     * concurrent executor has one — sequential same-shape traffic
     * reports 1, proving warm reuse.
     */
    std::size_t workspacesCreated() const;

    /**
     * The pipeline's metrics registry: per-(shard x class) queue
     * depth / wait / latency instruments (Scheduler), per-stage
     * latency histograms and admission/workspace telemetry (this
     * class), per-shard executor task counts (ShardedExecutor), and
     * the inference stage's per-stage nn timings. Render it with
     * serve::renderStats / renderStatsJson (serve/stats.h); mutation
     * cost is governed by core::metrics::setSampling.
     */
    core::metrics::Registry &metrics() { return registry_; }
    const core::metrics::Registry &metrics() const { return registry_; }

    /** Records held (pending + terminal-but-uncollected). */
    std::size_t liveRecordCount() const
    {
        return scheduler_.liveRecordCount();
    }

  private:
    /** Executor task body: process (or retire) the best queued
     *  request of @p shard. */
    void execute(unsigned shard);

    void notifyObserver(std::uint64_t id, Stage stage);

    /** Pop a warm workspace (reset) or create one (first-seen
     *  concurrency); checkinWorkspace returns it to the free list. */
    std::unique_ptr<core::Workspace> checkoutWorkspace();
    void checkinWorkspace(std::unique_ptr<core::Workspace> ws);

    ServeOptions options_;

    /**
     * Declared first deliberately: every layer below (executor,
     * scheduler, this class's own instruments) holds pointers into
     * the registry until its workers join, so the registry must be
     * destroyed last.
     */
    core::metrics::Registry registry_;

    /** Per-stage service-time histograms (serve.stage_us{stage=...}),
     *  recorded on the executing worker between stage boundaries. */
    std::array<core::metrics::Histogram *, 5> stage_us_{};

    /** Admission rejections (trySubmit returning nullopt). */
    core::metrics::Counter *rejected_ = nullptr;

    /** Workspace-pool telemetry: checkouts and distinct workspaces
     *  created (the gauge mirrors workspacesCreated()). */
    core::metrics::Counter *ws_checkouts_ = nullptr;
    core::metrics::Gauge *ws_created_gauge_ = nullptr;

    /** Declared before executor_ deliberately: an executor task
     *  returns its workspace lease as its very last action, which
     *  can race destruction — ~AsyncPipeline retires all requests,
     *  then the shard pools join their workers, and only after that
     *  join may the free list die. Reverse member order would free
     *  the list under a still-running check-in. */
    mutable std::mutex ws_mutex_;
    std::vector<std::unique_ptr<core::Workspace>> ws_free_;
    std::size_t ws_created_ = 0;

    core::ShardedExecutor executor_;
    Scheduler scheduler_;
};

} // namespace fc::serve

#endif // FC_SERVE_ASYNC_PIPELINE_H
