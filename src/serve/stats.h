/**
 * @file
 * /stats rendering — the serving runtime's observability export.
 *
 * Two renderings of one AsyncPipeline's metrics registry:
 *
 *   - renderStats: a stable, line-oriented text format (the classic
 *     /stats endpoint body). One instrument per line, grouped by
 *     kind and sorted by name within each kind, preceded by a single
 *     `#`-prefixed header line identifying the runtime shape:
 *
 *       # fractalcloud serve/stats shards=N threads_per_shard=N sampling=on
 *       core.executor.tasks{shard=0} counter 42
 *       ...
 *       serve.queue_depth{shard=0,class=interactive} gauge 0
 *       ...
 *       serve.wait_us{shard=0,class=interactive} histogram count=42 sum=...
 *
 *     The format is a compatibility surface: scrapers and the CI
 *     perf-trajectory tooling parse it, so lines are append-only —
 *     new instruments may appear, existing ones keep their shape.
 *
 *   - renderStatsJson: the same registry as a machine-readable JSON
 *     object: {"shards":N,"threads_per_shard":N,"sampling":bool,
 *     "metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}.
 *
 * Both are snapshots: counters/gauges are relaxed reads, histogram
 * fields are per-field consistent but not cross-field atomic —
 * adequate for monitoring, not for exact accounting during a race.
 * Rendering allocates only inside the caller's output string.
 */

#ifndef FC_SERVE_STATS_H
#define FC_SERVE_STATS_H

#include <string>

namespace fc::serve {

class AsyncPipeline;

/** Append the /stats text body for @p pipeline to @p out. */
void renderStats(const AsyncPipeline &pipeline, std::string &out);

/** Append the /stats JSON body for @p pipeline to @p out. */
void renderStatsJson(const AsyncPipeline &pipeline, std::string &out);

/** Value-returning conveniences. */
std::string renderStats(const AsyncPipeline &pipeline);
std::string renderStatsJson(const AsyncPipeline &pipeline);

} // namespace fc::serve

#endif // FC_SERVE_STATS_H
