#include "serve/ingest.h"

#include "common/logging.h"

namespace fc::serve {

StorageIngestor::StorageIngestor(
    AsyncPipeline &pipeline,
    std::shared_ptr<storage::FcpcReader> reader,
    const IngestOptions &options)
    : pipeline_(pipeline), reader_(std::move(reader)),
      options_(options)
{
    fc_assert(reader_ != nullptr && reader_->isOpen(),
              "ingestor needs an open reader");
    if (options_.prefetch_depth > 0)
        io_pool_ = std::make_unique<core::ThreadPool>(
            std::max(1u, options_.io_threads), /*standalone=*/true);
    storage::PrefetchOptions popts;
    popts.depth = options_.prefetch_depth;
    popts.pool = io_pool_.get();
    popts.num_shards = pipeline_.numShards();
    popts.mode = options_.mode;
    prefetcher_ = std::make_unique<storage::BlockPrefetcher>(reader_,
                                                             popts);

    core::metrics::Registry &reg = pipeline_.metrics();
    blocks_ = &reg.counter("serve.ingest.blocks");
    bytes_ = &reg.counter("serve.ingest.bytes");
    errors_ = &reg.counter("serve.ingest.errors");
    prefetch_hits_ = &reg.counter("serve.ingest.prefetch_hits");
    prefetch_waits_ = &reg.counter("serve.ingest.prefetch_waits");
}

StorageIngestor::~StorageIngestor() = default;

storage::PrefetchStats
StorageIngestor::prefetchStats() const
{
    return prefetcher_->stats();
}

std::vector<IngestResult>
StorageIngestor::runAll(const BatchRequest &request)
{
    const std::size_t blocks = reader_->blockCount();
    std::vector<IngestResult> results(blocks);
    std::vector<std::optional<Ticket>> tickets(blocks);

    const storage::PrefetchStats before = prefetcher_->stats();

    // Submission loop: pull each block out of the ring (scheduling
    // the next `depth` reads), then hand it to the pipeline under
    // the block's own placement key. submit() blocks on admission
    // when the queue is full, which is exactly the backpressure the
    // ring needs — reads stay `depth` ahead of admission, not of
    // completion.
    for (std::size_t i = 0; i < blocks; ++i) {
        data::PointCloud cloud;
        const storage::FcpcStatus status =
            prefetcher_->get(i, cloud);
        results[i].storage_status = status;
        if (status != storage::FcpcStatus::Ok) {
            errors_->add();
            continue;
        }
        blocks_->add();
        bytes_->add(reader_->blockBytes(i));
        // The (zero-copy) cloud moves into the pipeline; the mapping
        // keepalive rides inside it, so the file may be closed while
        // tickets are still in flight.
        tickets[i] = pipeline_.submit(
            std::move(cloud), request, options_.deadline,
            options_.priority, reader_->placementKey(i));
    }

    for (std::size_t i = 0; i < blocks; ++i)
        if (tickets[i].has_value())
            results[i].outcome = pipeline_.wait(*tickets[i]);

    const storage::PrefetchStats after = prefetcher_->stats();
    prefetch_hits_->add(after.hits - before.hits);
    prefetch_waits_->add(after.waits - before.waits);
    return results;
}

} // namespace fc::serve
