#include "serve/async_pipeline.h"

#include <exception>
#include <utility>

#include "common/logging.h"
#include "core/workspace.h"
#include "ops/fps.h"
#include "ops/gather.h"
#include "ops/neighbor.h"
#include "partition/partitioner.h"

namespace fc::serve {

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Started:
        return "started";
      case Stage::Partitioned:
        return "partitioned";
      case Stage::Sampled:
        return "sampled";
      case Stage::Grouped:
        return "grouped";
    }
    return "unknown";
}

AsyncPipeline::AsyncPipeline(const ServeOptions &options)
    : options_(options),
      pool_(options.pipeline.num_threads, /*standalone=*/true),
      scheduler_(options.queue_capacity, pool_.numThreads(),
                 options.work_conserving)
{
}

AsyncPipeline::~AsyncPipeline()
{
    // Retire everything before the pool (and its queue) dies: after
    // shutdown() no executor task remains queued, so the pool's
    // destructor assertion (empty queue) holds.
    scheduler_.shutdown();
}

std::optional<Ticket>
AsyncPipeline::trySubmitShared(
    std::shared_ptr<const data::PointCloud> cloud,
    const BatchRequest &request,
    std::optional<Clock::duration> deadline)
{
    std::optional<Ticket> ticket =
        scheduler_.trySubmit(std::move(cloud), request, deadline);
    if (ticket)
        pool_.submitDetached([this] { execute(); });
    return ticket;
}

Ticket
AsyncPipeline::submitShared(std::shared_ptr<const data::PointCloud> cloud,
                            const BatchRequest &request,
                            std::optional<Clock::duration> deadline)
{
    std::optional<Ticket> ticket =
        scheduler_.submitBlocking(std::move(cloud), request, deadline);
    fc_assert(ticket.has_value(),
              "submit on a shutting-down AsyncPipeline");
    pool_.submitDetached([this] { execute(); });
    return *ticket;
}

std::optional<Ticket>
AsyncPipeline::trySubmit(data::PointCloud cloud,
                         const BatchRequest &request,
                         std::optional<Clock::duration> deadline)
{
    return trySubmitShared(
        std::make_shared<const data::PointCloud>(std::move(cloud)),
        request, deadline);
}

Ticket
AsyncPipeline::submit(data::PointCloud cloud, const BatchRequest &request,
                      std::optional<Clock::duration> deadline)
{
    return submitShared(
        std::make_shared<const data::PointCloud>(std::move(cloud)),
        request, deadline);
}

void
AsyncPipeline::notifyObserver(std::uint64_t id, Stage stage)
{
    if (options_.stage_observer)
        options_.stage_observer(Ticket{id}, stage);
}

std::unique_ptr<core::Workspace>
AsyncPipeline::checkoutWorkspace()
{
    {
        std::lock_guard<std::mutex> lock(ws_mutex_);
        if (!ws_free_.empty()) {
            std::unique_ptr<core::Workspace> ws =
                std::move(ws_free_.back());
            ws_free_.pop_back();
            ws->reset();
            return ws;
        }
        ++ws_created_;
    }
    // Cold path: first request at this concurrency level. The pool
    // can never exceed the executor count, which the ThreadPool
    // bounds at its thread count.
    return std::make_unique<core::Workspace>();
}

void
AsyncPipeline::checkinWorkspace(std::unique_ptr<core::Workspace> ws)
{
    std::lock_guard<std::mutex> lock(ws_mutex_);
    ws_free_.push_back(std::move(ws));
}

std::size_t
AsyncPipeline::workspacesCreated() const
{
    std::lock_guard<std::mutex> lock(ws_mutex_);
    return ws_created_;
}

void
AsyncPipeline::execute()
{
    std::optional<Scheduler::Job> job = scheduler_.acquire();
    if (!job)
        return; // the head was retired (cancelled/expired) unrun

    // Spill: hand the shared pool to a stage so its per-block work
    // items fill idle slots; otherwise the stage runs inline on this
    // worker (one cloud per thread). The decision is refreshed at
    // every checkpoint — a request acquired at saturation starts
    // spilling once the pool drains. Identical results either way;
    // only the schedule differs.
    bool spill = job->spill;
    const auto pool = [&]() -> core::ThreadPool * {
        return spill && pool_.numThreads() > 1 ? &pool_ : nullptr;
    };
    const std::uint64_t id = job->id;
    const data::PointCloud &cloud = *job->cloud;

    // One warm workspace per ticket: intermediates (the partition,
    // op scratch, the inference stage's level buffers) reuse memory
    // grown by earlier requests; result payloads (BatchResult) stay
    // freshly owned because they outlive the workspace's checkout.
    // The lease scope closes *before* the terminal complete()/fail()
    // transition: the moment a waiter observes the outcome, the
    // workspace is already back on the free list, so back-to-back
    // sequential requests reuse one workspace deterministically.
    struct WorkspaceLease
    {
        AsyncPipeline *owner;
        std::unique_ptr<core::Workspace> ws;
        ~WorkspaceLease() { owner->checkinWorkspace(std::move(ws)); }
    };

    BatchResult out;
    try {
        WorkspaceLease lease{this, checkoutWorkspace()};
        core::Workspace &ws = *lease.ws;

        notifyObserver(id, Stage::Started);
        if (!scheduler_.checkpoint(id, &spill))
            return;

        part::PartitionConfig config;
        config.threshold = options_.pipeline.threshold;
        part::PartitionerCache &pcache =
            ws.slot<part::PartitionerCache>("srv.pcache");
        part::PartitionResult &part =
            ws.slot<part::PartitionResult>("srv.part");
        pcache.get(options_.pipeline.method)
            .partitionInto(cloud, config, pool(), ws, part);
        notifyObserver(id, Stage::Partitioned);
        if (!scheduler_.checkpoint(id, &spill))
            return;

        ops::FpsOptions fps;
        fps.window_check = options_.pipeline.window_check;
        ops::blockFarthestPointSample(cloud, part.tree,
                                      job->request.sample_rate, fps,
                                      pool(), ws, out.sampled);
        notifyObserver(id, Stage::Sampled);
        if (!scheduler_.checkpoint(id, &spill))
            return;

        ops::blockBallQuery(cloud, part.tree, out.sampled,
                            job->request.radius,
                            job->request.neighbors, pool(), ws,
                            out.grouped);
        notifyObserver(id, Stage::Grouped);
        if (!scheduler_.checkpoint(id, &spill))
            return;

        ops::blockGatherNeighborhoods(
            cloud, part.tree, out.sampled.indices,
            out.sampled.leaf_offsets, out.grouped, pool(), ws,
            out.gathered);
        out.partition_stats = part.stats;
        out.num_blocks = part.tree.leaves().size();

        if (job->request.network != nullptr) {
            // End-to-end inference stage: the serving pool drives the
            // network's internals (per-stage re-partition, block ops,
            // MLPs, pooling), all drawing from this ticket's warm
            // workspace. Extra checkpoint first — inference is the
            // most expensive stage, so cancels/deadlines issued
            // during gathering are honored before it starts.
            if (!scheduler_.checkpoint(id, &spill))
                return;
            nn::BackendOptions backend;
            backend.method = options_.pipeline.method;
            backend.threshold = options_.pipeline.threshold;
            backend.pool = pool();
            // Stage 0 of the network reuses the partition this
            // request already built instead of recomputing it.
            backend.root_partition = &part;
            out.inference.emplace();
            job->request.network->run(cloud, backend, ws,
                                      *out.inference);
        }
        // Lease scope ends here: the workspace is checked in before
        // the request becomes observable as Done.
    } catch (...) {
        scheduler_.fail(id, std::current_exception());
        return;
    }
    scheduler_.complete(id, std::move(out));
}

} // namespace fc::serve
