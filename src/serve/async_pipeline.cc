#include "serve/async_pipeline.h"

#include <exception>
#include <utility>

#include "common/logging.h"
#include "ops/fps.h"
#include "ops/gather.h"
#include "ops/neighbor.h"
#include "partition/partitioner.h"

namespace fc::serve {

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Started:
        return "started";
      case Stage::Partitioned:
        return "partitioned";
      case Stage::Sampled:
        return "sampled";
      case Stage::Grouped:
        return "grouped";
    }
    return "unknown";
}

AsyncPipeline::AsyncPipeline(const ServeOptions &options)
    : options_(options),
      pool_(options.pipeline.num_threads, /*standalone=*/true),
      scheduler_(options.queue_capacity, pool_.numThreads(),
                 options.work_conserving)
{
}

AsyncPipeline::~AsyncPipeline()
{
    // Retire everything before the pool (and its queue) dies: after
    // shutdown() no executor task remains queued, so the pool's
    // destructor assertion (empty queue) holds.
    scheduler_.shutdown();
}

std::optional<Ticket>
AsyncPipeline::trySubmitShared(
    std::shared_ptr<const data::PointCloud> cloud,
    const BatchRequest &request,
    std::optional<Clock::duration> deadline)
{
    std::optional<Ticket> ticket =
        scheduler_.trySubmit(std::move(cloud), request, deadline);
    if (ticket)
        pool_.submitDetached([this] { execute(); });
    return ticket;
}

Ticket
AsyncPipeline::submitShared(std::shared_ptr<const data::PointCloud> cloud,
                            const BatchRequest &request,
                            std::optional<Clock::duration> deadline)
{
    std::optional<Ticket> ticket =
        scheduler_.submitBlocking(std::move(cloud), request, deadline);
    fc_assert(ticket.has_value(),
              "submit on a shutting-down AsyncPipeline");
    pool_.submitDetached([this] { execute(); });
    return *ticket;
}

std::optional<Ticket>
AsyncPipeline::trySubmit(data::PointCloud cloud,
                         const BatchRequest &request,
                         std::optional<Clock::duration> deadline)
{
    return trySubmitShared(
        std::make_shared<const data::PointCloud>(std::move(cloud)),
        request, deadline);
}

Ticket
AsyncPipeline::submit(data::PointCloud cloud, const BatchRequest &request,
                      std::optional<Clock::duration> deadline)
{
    return submitShared(
        std::make_shared<const data::PointCloud>(std::move(cloud)),
        request, deadline);
}

void
AsyncPipeline::notifyObserver(std::uint64_t id, Stage stage)
{
    if (options_.stage_observer)
        options_.stage_observer(Ticket{id}, stage);
}

void
AsyncPipeline::execute()
{
    std::optional<Scheduler::Job> job = scheduler_.acquire();
    if (!job)
        return; // the head was retired (cancelled/expired) unrun

    // Spill: hand the shared pool to a stage so its per-block work
    // items fill idle slots; otherwise the stage runs inline on this
    // worker (one cloud per thread). The decision is refreshed at
    // every checkpoint — a request acquired at saturation starts
    // spilling once the pool drains. Identical results either way;
    // only the schedule differs.
    bool spill = job->spill;
    const auto pool = [&]() -> core::ThreadPool * {
        return spill && pool_.numThreads() > 1 ? &pool_ : nullptr;
    };
    const std::uint64_t id = job->id;
    const data::PointCloud &cloud = *job->cloud;

    try {
        notifyObserver(id, Stage::Started);
        if (!scheduler_.checkpoint(id, &spill))
            return;

        part::PartitionConfig config;
        config.threshold = options_.pipeline.threshold;
        const auto partitioner =
            part::makePartitioner(options_.pipeline.method);
        const part::PartitionResult part =
            partitioner->partition(cloud, config, pool());
        notifyObserver(id, Stage::Partitioned);
        if (!scheduler_.checkpoint(id, &spill))
            return;

        BatchResult out;
        ops::FpsOptions fps;
        fps.window_check = options_.pipeline.window_check;
        out.sampled = ops::blockFarthestPointSample(
            cloud, part.tree, job->request.sample_rate, fps, pool());
        notifyObserver(id, Stage::Sampled);
        if (!scheduler_.checkpoint(id, &spill))
            return;

        out.grouped =
            ops::blockBallQuery(cloud, part.tree, out.sampled,
                                job->request.radius,
                                job->request.neighbors, pool());
        notifyObserver(id, Stage::Grouped);
        if (!scheduler_.checkpoint(id, &spill))
            return;

        out.gathered = ops::blockGatherNeighborhoods(
            cloud, part.tree, out.sampled.indices,
            out.sampled.leaf_offsets, out.grouped, pool());
        out.partition_stats = part.stats;
        out.num_blocks = part.tree.leaves().size();

        if (job->request.network != nullptr) {
            // End-to-end inference stage: the serving pool drives the
            // network's internals (per-stage re-partition, block ops,
            // MLPs, pooling). Extra checkpoint first — inference is
            // the most expensive stage, so cancels/deadlines issued
            // during gathering are honored before it starts.
            if (!scheduler_.checkpoint(id, &spill))
                return;
            nn::BackendOptions backend;
            backend.method = options_.pipeline.method;
            backend.threshold = options_.pipeline.threshold;
            backend.pool = pool();
            // Stage 0 of the network reuses the partition this
            // request already built instead of recomputing it.
            backend.root_partition = &part;
            out.inference =
                job->request.network->run(cloud, backend);
        }
        scheduler_.complete(id, std::move(out));
    } catch (...) {
        scheduler_.fail(id, std::current_exception());
    }
}

} // namespace fc::serve
