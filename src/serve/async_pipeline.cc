#include "serve/async_pipeline.h"

#include <exception>
#include <utility>

#include "common/logging.h"
#include "core/workspace.h"
#include "ops/fps.h"
#include "ops/gather.h"
#include "ops/neighbor.h"
#include "partition/partitioner.h"

namespace fc::serve {

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Started:
        return "started";
      case Stage::Partitioned:
        return "partitioned";
      case Stage::Sampled:
        return "sampled";
      case Stage::Grouped:
        return "grouped";
    }
    return "unknown";
}

AsyncPipeline::AsyncPipeline(const ServeOptions &options)
    : options_(options),
      executor_(std::max(1u, options.num_shards),
                options.pipeline.num_threads, /*standalone=*/true,
                options.pin_shards),
      scheduler_(options.queue_capacity, executor_.threadsPerShard(),
                 options.work_conserving, executor_.numShards(),
                 options.priority_weights, &registry_,
                 options.class_capacity)
{
    executor_.attachMetrics(registry_);
    static constexpr const char *kStageLabels[5] = {
        "partition", "sample", "group", "gather", "inference"};
    for (std::size_t i = 0; i < stage_us_.size(); ++i)
        stage_us_[i] = &registry_.histogram(
            std::string("serve.stage_us{stage=") + kStageLabels[i] +
            "}");
    rejected_ = &registry_.counter("serve.rejected");
    ws_checkouts_ = &registry_.counter("serve.workspace_checkouts");
    ws_created_gauge_ = &registry_.gauge("serve.workspaces_created");

    // One memory pool per shard, instruments registered up front so
    // the serve path mutates pointers only. With shard-local routing
    // off, only pool 0 sees traffic; the others idle at zero.
    pools_.reserve(executor_.numShards());
    for (unsigned s = 0; s < executor_.numShards(); ++s) {
        auto pool = std::make_unique<ShardPool>();
        const std::string tag = "{shard=" + std::to_string(s) + "}";
        pool->checkout =
            &registry_.counter("serve.workspace.checkout" + tag);
        pool->created =
            &registry_.gauge("serve.workspace.created" + tag);
        pool->foreign_return =
            &registry_.counter("serve.workspace.foreign_return" + tag);
        pool->outcome_checkout =
            &registry_.counter("serve.outcome.checkout" + tag);
        pool->outcome_created =
            &registry_.gauge("serve.outcome.created" + tag);
        pools_.push_back(std::move(pool));
    }
    scheduler_.setOutcomeRecycler(
        [this](OutcomeSlot *slot) { recycleOutcome(slot); });
}

AsyncPipeline::~AsyncPipeline()
{
    // Retire everything before the pool (and its queue) dies: after
    // shutdown() no executor task remains queued, so the pool's
    // destructor assertion (empty queue) holds.
    scheduler_.shutdown();
}

std::optional<Ticket>
AsyncPipeline::trySubmitShared(
    std::shared_ptr<const data::PointCloud> cloud,
    const BatchRequest &request,
    std::optional<Clock::duration> deadline, Priority priority,
    std::uint64_t placement_key)
{
    // Warm the cloud's SoA mirror on the submitter: the mirror is
    // lazy-rebuild-on-first-read and must be first-touched serially
    // (see PointCloud::soa), and a cloud shared across shards would
    // otherwise be first-touched by two workers at once. Admission is
    // the last point that sees the cloud single-threaded; once built,
    // re-submits of the same cloud reduce to one clean flag check.
    (void)cloud->soa();

    // One executor task per request, on the shard the scheduler
    // placed it on (returned by the admission call itself — no
    // second lock to read it back).
    unsigned shard = 0;
    std::optional<Ticket> ticket =
        scheduler_.trySubmit(std::move(cloud), request, deadline,
                             priority, placement_key, &shard);
    if (ticket)
        executor_.submitDetached(shard,
                                 [this, shard] { execute(shard); });
    else
        rejected_->add();
    return ticket;
}

Ticket
AsyncPipeline::submitShared(std::shared_ptr<const data::PointCloud> cloud,
                            const BatchRequest &request,
                            std::optional<Clock::duration> deadline,
                            Priority priority,
                            std::uint64_t placement_key)
{
    (void)cloud->soa(); // serial first-touch; see trySubmitShared
    unsigned shard = 0;
    std::optional<Ticket> ticket =
        scheduler_.submitBlocking(std::move(cloud), request, deadline,
                                  priority, placement_key, &shard);
    fc_assert(ticket.has_value(),
              "submit on a shutting-down AsyncPipeline");
    executor_.submitDetached(shard, [this, shard] { execute(shard); });
    return *ticket;
}

std::optional<Ticket>
AsyncPipeline::trySubmit(data::PointCloud cloud,
                         const BatchRequest &request,
                         std::optional<Clock::duration> deadline,
                         Priority priority, std::uint64_t placement_key)
{
    return trySubmitShared(
        std::make_shared<const data::PointCloud>(std::move(cloud)),
        request, deadline, priority, placement_key);
}

Ticket
AsyncPipeline::submit(data::PointCloud cloud, const BatchRequest &request,
                      std::optional<Clock::duration> deadline,
                      Priority priority, std::uint64_t placement_key)
{
    return submitShared(
        std::make_shared<const data::PointCloud>(std::move(cloud)),
        request, deadline, priority, placement_key);
}

void
AsyncPipeline::notifyObserver(std::uint64_t id, Stage stage)
{
    if (options_.stage_observer)
        options_.stage_observer(Ticket{id}, stage);
}

std::unique_ptr<AsyncPipeline::ShardWorkspace>
AsyncPipeline::checkoutWorkspace(unsigned shard)
{
    const unsigned owner =
        options_.shard_local_workspaces ? shard : 0u;
    ShardPool &pool = *pools_[owner];
    ws_checkouts_->add();
    pool.checkout->add();
    {
        std::lock_guard<std::mutex> lock(pool.mutex);
        if (!pool.ws_free.empty()) {
            std::unique_ptr<ShardWorkspace> ws =
                std::move(pool.ws_free.back());
            pool.ws_free.pop_back();
            ws->ws.reset();
            return ws;
        }
        ++pool.ws_created;
        pool.created->set(
            static_cast<std::int64_t>(pool.ws_created));
    }
    // Cold path: first request at this shard's concurrency level.
    // The pool can never exceed the shard's thread count (one
    // checkout per executor task).
    const std::size_t total =
        ws_created_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    ws_created_gauge_->set(static_cast<std::int64_t>(total));
    auto ws = std::make_unique<ShardWorkspace>();
    ws->owner = owner;
    return ws;
}

void
AsyncPipeline::checkinWorkspace(std::unique_ptr<ShardWorkspace> ws,
                                unsigned returning_shard)
{
    ShardPool &pool = *pools_[ws->owner];
    if (options_.shard_local_workspaces &&
        returning_shard != ws->owner)
        pool.foreign_return->add(); // tripwire: should stay 0
    std::lock_guard<std::mutex> lock(pool.mutex);
    pool.ws_free.push_back(std::move(ws));
}

OutcomeSlot *
AsyncPipeline::checkoutOutcome(unsigned shard)
{
    ShardPool &pool = *pools_[shard];
    pool.outcome_checkout->add();
    {
        std::lock_guard<std::mutex> lock(pool.mutex);
        if (!pool.outcome_free.empty()) {
            OutcomeSlot *slot = pool.outcome_free.back();
            pool.outcome_free.pop_back();
            return slot; // capacity intact from its previous life
        }
    }
    // Cold path: grow the slab. Slot count is bounded by the peak
    // number of concurrently un-consumed tickets on this shard.
    auto owned = std::make_unique<OutcomeSlot>();
    owned->owner_shard = shard;
    OutcomeSlot *slot = owned.get();
    std::size_t shard_total;
    {
        std::lock_guard<std::mutex> lock(pool.mutex);
        pool.outcome_all.push_back(std::move(owned));
        shard_total = pool.outcome_all.size();
    }
    pool.outcome_created->set(static_cast<std::int64_t>(shard_total));
    outcomes_created_total_.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

void
AsyncPipeline::recycleOutcome(OutcomeSlot *slot)
{
    // Called both from executor workers (abandoned leases) and from
    // under the scheduler mutex (the consuming wait); the pool mutex
    // is a leaf, so no inversion either way.
    ShardPool &pool = *pools_[slot->owner_shard];
    std::lock_guard<std::mutex> lock(pool.mutex);
    pool.outcome_free.push_back(slot);
}

std::size_t
AsyncPipeline::workspacesCreated() const
{
    return ws_created_total_.load(std::memory_order_relaxed);
}

std::size_t
AsyncPipeline::workspacesCreated(unsigned shard) const
{
    fc_assert(shard < pools_.size(),
              "workspacesCreated on unknown shard %u", shard);
    ShardPool &pool = *pools_[shard];
    std::lock_guard<std::mutex> lock(pool.mutex);
    return pool.ws_created;
}

std::size_t
AsyncPipeline::outcomeSlotsCreated() const
{
    return outcomes_created_total_.load(std::memory_order_relaxed);
}

void
AsyncPipeline::execute(unsigned shard)
{
    std::optional<Scheduler::Job> job = scheduler_.acquire(shard);
    if (!job)
        return; // the popped request was retired (cancelled/expired)

    // Spill: hand a shard's pool to a stage so the request's
    // per-block work items fill idle slots — its own shard's when
    // whole requests can't saturate it, a fully idle neighbor's when
    // its own is busy; otherwise the stage runs inline on this
    // worker (one cloud per thread). The decision is re-evaluated at
    // every checkpoint (all chunks have joined there): a request
    // acquired at saturation starts spilling once capacity frees
    // anywhere, and a borrowed neighbor is released one stage after
    // it receives its own work. Identical results either way; only
    // the schedule differs. (A one-thread spill target degenerates
    // to inline: its TaskGroup would run chunks on this waiter
    // anyway.)
    bool spill = job->spill;
    int spill_shard = job->spill_shard;
    const auto pool = [&]() -> core::ThreadPool * {
        if (!spill || spill_shard < 0)
            return nullptr;
        core::ThreadPool &target =
            executor_.shard(static_cast<unsigned>(spill_shard));
        return target.numThreads() > 1 ? &target : nullptr;
    };
    const std::uint64_t id = job->id;
    const data::PointCloud &cloud = *job->cloud;

    // One warm workspace per ticket: intermediates (the partition,
    // op scratch, the inference stage's level buffers) reuse memory
    // grown by earlier requests of this shard. The lease scope
    // closes *before* the terminal complete()/fail() transition: the
    // moment a waiter observes the outcome, the workspace is already
    // back on its shard's free list, so back-to-back sequential
    // requests reuse one workspace deterministically.
    struct WorkspaceLease
    {
        AsyncPipeline *owner;
        std::unique_ptr<ShardWorkspace> ws;
        unsigned shard;
        ~WorkspaceLease()
        {
            owner->checkinWorkspace(std::move(ws), shard);
        }
    };

    // The result payload lives in a pooled slot from this shard's
    // slab; stages write into it in place (the Into ops clear what
    // they fill), so a recycled slot's stale content is never
    // observable. On the happy path the lease transfers to the
    // scheduler at complete(); every early exit (checkpoint retire,
    // exception) recycles it here instead.
    struct OutcomeLease
    {
        AsyncPipeline *owner;
        OutcomeSlot *slot;
        ~OutcomeLease()
        {
            if (slot != nullptr)
                owner->recycleOutcome(slot);
        }
    };

    // Per-stage service-time telemetry: lap() charges the time since
    // the previous boundary to one stage histogram. The two
    // steady-clock reads per stage cost nanoseconds against
    // millisecond stages; with sampling off the record itself is a
    // load + branch.
    Clock::time_point stage_mark = Clock::now();
    const auto lap = [&](unsigned stage_index) {
        const Clock::time_point now = Clock::now();
        if (now > stage_mark)
            stage_us_[stage_index]->record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    now - stage_mark)
                    .count()));
        else
            stage_us_[stage_index]->record(0);
        stage_mark = now;
    };

    OutcomeLease outcome{this, checkoutOutcome(shard)};
    BatchResult &out = outcome.slot->result;
    try {
        WorkspaceLease lease{this, checkoutWorkspace(shard), shard};
        core::Workspace &ws = lease.ws->ws;

        notifyObserver(id, Stage::Started);
        if (!scheduler_.checkpoint(id, &spill, &spill_shard))
            return;

        part::PartitionConfig config;
        config.threshold = options_.pipeline.threshold;
        part::PartitionerCache &pcache =
            ws.slot<part::PartitionerCache>("srv.pcache");
        part::PartitionResult &part =
            ws.slot<part::PartitionResult>("srv.part");
        pcache.get(options_.pipeline.method)
            .partitionInto(cloud, config, pool(), ws, part);
        lap(0); // partition
        notifyObserver(id, Stage::Partitioned);
        if (!scheduler_.checkpoint(id, &spill, &spill_shard))
            return;

        ops::FpsOptions fps;
        fps.window_check = options_.pipeline.window_check;
        ops::blockFarthestPointSample(cloud, part.tree,
                                      job->request.sample_rate, fps,
                                      pool(), ws, out.sampled);
        lap(1); // sample
        notifyObserver(id, Stage::Sampled);
        if (!scheduler_.checkpoint(id, &spill, &spill_shard))
            return;

        ops::blockBallQuery(cloud, part.tree, out.sampled,
                            job->request.radius,
                            job->request.neighbors, pool(), ws,
                            out.grouped);
        lap(2); // group
        notifyObserver(id, Stage::Grouped);
        if (!scheduler_.checkpoint(id, &spill, &spill_shard))
            return;

        ops::blockGatherNeighborhoods(
            cloud, part.tree, out.sampled.indices,
            out.sampled.leaf_offsets, out.grouped, pool(), ws,
            out.gathered);
        out.partition_stats = part.stats;
        out.num_blocks = part.tree.leaves().size();
        lap(3); // gather

        if (job->request.network != nullptr) {
            // End-to-end inference stage: the serving pool drives the
            // network's internals (per-stage re-partition, block ops,
            // MLPs, pooling), all drawing from this ticket's warm
            // workspace. Extra checkpoint first — inference is the
            // most expensive stage, so cancels/deadlines issued
            // during gathering are honored before it starts.
            if (!scheduler_.checkpoint(id, &spill, &spill_shard))
                return;
            stage_mark = Clock::now(); // exclude checkpoint wait
            nn::BackendOptions backend;
            backend.method = options_.pipeline.method;
            backend.threshold = options_.pipeline.threshold;
            backend.pool = pool();
            backend.aggregation = job->request.aggregation;
            // Stage 0 of the network reuses the partition this
            // request already built instead of recomputing it.
            backend.root_partition = &part;
            // Per-stage FPS/neighbor/MLP timings land in this
            // pipeline's registry (nn.stage_us{stage=...}).
            backend.metrics = &registry_;
            // Engage (don't re-emplace) the optional: a recycled
            // slot's engaged InferenceResult keeps its tensor
            // capacity, which run() reuses in place.
            if (!out.inference)
                out.inference.emplace();
            job->request.network->run(cloud, backend, ws,
                                      *out.inference);
            lap(4); // inference
        } else {
            // A recycled slot may carry a stale inference payload
            // from a previous network request; waiters key on the
            // optional's engagement.
            out.inference.reset();
        }
        // Lease scope ends here: the workspace is checked in before
        // the request becomes observable as Done.
    } catch (...) {
        scheduler_.fail(id, std::current_exception());
        return;
    }
    scheduler_.complete(id, outcome.slot);
    outcome.slot = nullptr; // lease transferred to the record
}

} // namespace fc::serve
