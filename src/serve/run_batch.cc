/**
 * @file
 * FractalCloudPipeline::runBatch — the blocking batch wrapper over
 * the async serving frontend.
 *
 * Declared in core/pipeline.h (it is the core API's batched entry
 * point) but DEFINED here, inside the fc_serve target: the wrapper
 * rides serve::AsyncPipeline, and the core library must not include
 * or link upward into serve/. Callers of runBatch link fc_serve;
 * everything else in FractalCloudPipeline needs only the core
 * library.
 */

#include <exception>
#include <utility>

#include "common/logging.h"
#include "core/pipeline.h"
#include "serve/async_pipeline.h"

namespace fc {

std::vector<BatchResult>
FractalCloudPipeline::runBatch(const std::vector<data::PointCloud> &clouds,
                               const PipelineOptions &options,
                               const BatchRequest &request)
{
    fc_assert(request.neighbors > 0, "batch needs neighbors > 0");
    std::vector<BatchResult> results(clouds.size());
    if (clouds.empty())
        return results;

    // Expressed over the async serving path: one ticket per cloud,
    // dispatched over a standalone single-shard pool, with the
    // work-conserving scheduler spilling intra-cloud block items into
    // idle slots when the batch tail leaves threads unoccupied. Every
    // per-cloud result stays bit-identical to a sequential pipeline
    // run of that cloud. Deliberate tradeoff: even num_threads = 1
    // spawns one short-lived worker (the pre-async path ran inline);
    // the ~0.1 ms of thread setup is noise against per-cloud
    // processing, and one code path keeps blocking === async by
    // construction. All requests share one priority class, so the
    // schedule is the strict FIFO the blocking semantics promise.
    serve::ServeOptions serve_options;
    serve_options.pipeline = options;
    serve_options.queue_capacity = clouds.size();
    serve::AsyncPipeline server(serve_options);

    std::vector<serve::Ticket> tickets;
    tickets.reserve(clouds.size());
    for (std::size_t i = 0; i < clouds.size(); ++i) {
        fc_assert(!clouds[i].empty(),
                  "runBatch requires non-empty clouds (cloud %zu is "
                  "empty)",
                  i);
        // Aliasing handle: the caller's vector outlives the server,
        // which drains fully before this function returns.
        tickets.push_back(server.submitShared(
            std::shared_ptr<const data::PointCloud>(
                std::shared_ptr<const data::PointCloud>(), &clouds[i]),
            request));
    }
    for (std::size_t i = 0; i < clouds.size(); ++i) {
        serve::RequestOutcome outcome = server.wait(tickets[i]);
        // Blocking semantics: a stage exception propagates to the
        // caller exactly as the pre-async runBatch rethrew it.
        if (outcome.state == serve::RequestState::Failed)
            std::rethrow_exception(outcome.exception);
        fc_assert(outcome.state == serve::RequestState::Done,
                  "batch cloud %zu ended %s", i,
                  serve::stateName(outcome.state));
        results[i] = std::move(outcome.result);
    }
    return results;
}

} // namespace fc
