#include "serve/stats.h"

#include <cstdio>

#include "core/metrics.h"
#include "serve/async_pipeline.h"

namespace fc::serve {

void
renderStats(const AsyncPipeline &pipeline, std::string &out)
{
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "# fractalcloud serve/stats shards=%u "
                  "threads_per_shard=%u sampling=%s\n",
                  pipeline.numShards(), pipeline.numThreads(),
                  core::metrics::samplingEnabled() ? "on" : "off");
    out += buf;
    pipeline.metrics().renderText(out);
}

void
renderStatsJson(const AsyncPipeline &pipeline, std::string &out)
{
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"shards\":%u,\"threads_per_shard\":%u,"
                  "\"sampling\":%s,\"metrics\":",
                  pipeline.numShards(), pipeline.numThreads(),
                  core::metrics::samplingEnabled() ? "true" : "false");
    out += buf;
    pipeline.metrics().renderJson(out);
    out += '}';
}

std::string
renderStats(const AsyncPipeline &pipeline)
{
    std::string out;
    renderStats(pipeline, out);
    return out;
}

std::string
renderStatsJson(const AsyncPipeline &pipeline)
{
    std::string out;
    renderStatsJson(pipeline, out);
    return out;
}

} // namespace fc::serve
