#include "core/workspace.h"

#include <algorithm>
#include <cstdint>

namespace fc::core {

namespace {

/** First chunk size; later chunks double the total at minimum. */
constexpr std::size_t kMinChunkBytes = 64 * 1024;

std::size_t
roundUp(std::size_t bytes, std::size_t align)
{
    return (bytes + align - 1) / align * align;
}

} // namespace

void *
Arena::allocate(std::size_t bytes)
{
    static std::byte dummy alignas(kAlignment);
    if (bytes == 0)
        return &dummy;
    const std::size_t need = roundUp(bytes, kAlignment);

    std::lock_guard<std::mutex> lock(mutex_);
    used_ += need;
    // Advance through retained chunks first (a warm request replays
    // into the footprint its cold run established); grow only when
    // every retained chunk is exhausted.
    while (active_ < chunks_.size() &&
           chunks_[active_].capacity - offset_ < need) {
        ++active_;
        offset_ = 0;
    }
    if (active_ == chunks_.size()) {
        std::size_t reserved = 0;
        for (const Chunk &c : chunks_)
            reserved += c.capacity;
        const std::size_t capacity =
            std::max({need, reserved, kMinChunkBytes});
        Chunk chunk;
        chunk.storage =
            std::make_unique<std::byte[]>(capacity + kAlignment);
        const auto base =
            reinterpret_cast<std::uintptr_t>(chunk.storage.get());
        chunk.data = chunk.storage.get() +
                     (roundUp(base, kAlignment) - base);
        chunk.capacity = capacity;
        chunks_.push_back(std::move(chunk));
        offset_ = 0;
    }
    void *out = chunks_[active_].data + offset_;
    offset_ += need;
    return out;
}

void
Arena::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    active_ = 0;
    offset_ = 0;
    used_ = 0;
}

std::size_t
Arena::bytesReserved() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const Chunk &c : chunks_)
        total += c.capacity;
    return total;
}

std::size_t
Arena::bytesUsed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return used_;
}

std::size_t
Arena::chunkCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return chunks_.size();
}

} // namespace fc::core
