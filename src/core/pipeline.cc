#include "core/pipeline.h"

#include "common/logging.h"

// Layering note: this file must not reach up into serve/ — the core
// library is a standalone CMake target the serving layer links
// against, never the reverse. The blocking runBatch wrapper (which
// rides the async serving path) therefore lives in
// serve/run_batch.cc, inside the fc_serve target.

namespace fc {

namespace {

/** Build the pool an options struct asks for (null = sequential). */
std::shared_ptr<core::ThreadPool>
makePool(unsigned num_threads)
{
    if (core::ThreadPool::resolveThreadCount(num_threads) <= 1)
        return nullptr;
    return std::make_shared<core::ThreadPool>(num_threads);
}

} // namespace

FractalCloudPipeline::FractalCloudPipeline(data::PointCloud cloud,
                                           const PipelineOptions &options)
    : cloud_(std::move(cloud)), options_(options),
      pool_(makePool(options.num_threads))
{
    fc_assert(!cloud_.empty(), "pipeline requires a non-empty cloud");
    const auto partitioner = part::makePartitioner(options_.method);
    part::PartitionConfig config;
    config.threshold = options_.threshold;
    partition_ = partitioner->partition(cloud_, config, pool_.get());
}

data::PointCloud
FractalCloudPipeline::reordered() const
{
    return cloud_.permuted(partition_.tree.order());
}

ops::BlockSampleResult
FractalCloudPipeline::sample(double rate) const
{
    ops::FpsOptions fps;
    fps.window_check = options_.window_check;
    return ops::blockFarthestPointSample(cloud_, partition_.tree, rate,
                                         fps, pool_.get());
}

ops::NeighborResult
FractalCloudPipeline::group(const ops::BlockSampleResult &centers,
                            float radius, std::size_t k) const
{
    return ops::blockBallQuery(cloud_, partition_.tree, centers, radius,
                               k, pool_.get());
}

ops::GatherResult
FractalCloudPipeline::gather(const ops::BlockSampleResult &centers,
                             const ops::NeighborResult &neighbors) const
{
    return ops::blockGatherNeighborhoods(
        cloud_, partition_.tree, centers.indices, centers.leaf_offsets,
        neighbors, pool_.get());
}

ops::InterpolateResult
FractalCloudPipeline::interpolate(
    const ops::BlockSampleResult &sampled,
    const std::vector<float> &known_features, std::size_t channels,
    std::size_t k) const
{
    return ops::blockInterpolate(cloud_, partition_.tree, sampled,
                                 known_features, channels, k,
                                 pool_.get());
}

void
FractalCloudPipeline::infer(const nn::Network &network,
                            nn::InferenceResult &out) const
{
    nn::BackendOptions backend;
    backend.method = options_.method;
    backend.threshold = options_.threshold;
    // The pipeline's pool drives the network end to end: per-stage
    // re-partition, block ops, MLPs, pooling, interpolation. The
    // partition built at construction is reused for SA stage 0.
    backend.pool = pool_.get();
    backend.root_partition = &partition_;
    std::lock_guard<std::mutex> lock(infer_state_->mutex);
    infer_state_->workspace.reset();
    network.run(cloud_, backend, infer_state_->workspace, out);
}

nn::InferenceResult
FractalCloudPipeline::infer(const nn::Network &network) const
{
    nn::InferenceResult out;
    infer(network, out);
    return out;
}

accel::RunReport
FractalCloudPipeline::estimate(const nn::ModelConfig &model) const
{
    const accel::AcceleratorModel accel =
        accel::makeFractalCloud(options_.threshold);
    const accel::NetworkShape shape =
        accel::buildNetworkShape(model, cloud_.size());
    const accel::BlockSummary blocks =
        accel::summarizeBlocks(partition_);
    return accel.runShape(shape, blocks);
}

} // namespace fc
