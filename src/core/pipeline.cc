#include "core/pipeline.h"

#include "common/logging.h"

namespace fc {

namespace {

/** Build the pool an options struct asks for (null = sequential). */
std::shared_ptr<core::ThreadPool>
makePool(unsigned num_threads)
{
    if (core::ThreadPool::resolveThreadCount(num_threads) <= 1)
        return nullptr;
    return std::make_shared<core::ThreadPool>(num_threads);
}

} // namespace

FractalCloudPipeline::FractalCloudPipeline(data::PointCloud cloud,
                                           const PipelineOptions &options)
    : cloud_(std::move(cloud)), options_(options),
      pool_(makePool(options.num_threads))
{
    fc_assert(!cloud_.empty(), "pipeline requires a non-empty cloud");
    const auto partitioner = part::makePartitioner(options_.method);
    part::PartitionConfig config;
    config.threshold = options_.threshold;
    partition_ = partitioner->partition(cloud_, config, pool_.get());
}

data::PointCloud
FractalCloudPipeline::reordered() const
{
    return cloud_.permuted(partition_.tree.order());
}

ops::BlockSampleResult
FractalCloudPipeline::sample(double rate) const
{
    ops::FpsOptions fps;
    fps.window_check = options_.window_check;
    return ops::blockFarthestPointSample(cloud_, partition_.tree, rate,
                                         fps, pool_.get());
}

ops::NeighborResult
FractalCloudPipeline::group(const ops::BlockSampleResult &centers,
                            float radius, std::size_t k) const
{
    return ops::blockBallQuery(cloud_, partition_.tree, centers, radius,
                               k, pool_.get());
}

ops::GatherResult
FractalCloudPipeline::gather(const ops::BlockSampleResult &centers,
                             const ops::NeighborResult &neighbors) const
{
    return ops::blockGatherNeighborhoods(
        cloud_, partition_.tree, centers.indices, centers.leaf_offsets,
        neighbors, pool_.get());
}

ops::InterpolateResult
FractalCloudPipeline::interpolate(
    const ops::BlockSampleResult &sampled,
    const std::vector<float> &known_features, std::size_t channels,
    std::size_t k) const
{
    return ops::blockInterpolate(cloud_, partition_.tree, sampled,
                                 known_features, channels, k,
                                 pool_.get());
}

nn::InferenceResult
FractalCloudPipeline::infer(const nn::Network &network) const
{
    nn::BackendOptions backend;
    backend.method = options_.method;
    backend.threshold = options_.threshold;
    return network.run(cloud_, backend);
}

accel::RunReport
FractalCloudPipeline::estimate(const nn::ModelConfig &model) const
{
    const accel::AcceleratorModel accel =
        accel::makeFractalCloud(options_.threshold);
    const accel::NetworkShape shape =
        accel::buildNetworkShape(model, cloud_.size());
    const accel::BlockSummary blocks =
        accel::summarizeBlocks(partition_);
    return accel.runShape(shape, blocks);
}

std::vector<BatchResult>
FractalCloudPipeline::runBatch(const std::vector<data::PointCloud> &clouds,
                               const PipelineOptions &options,
                               const BatchRequest &request)
{
    fc_assert(request.neighbors > 0, "batch needs neighbors > 0");
    std::vector<BatchResult> results(clouds.size());
    const std::shared_ptr<core::ThreadPool> pool =
        makePool(options.num_threads);
    const auto partitioner = part::makePartitioner(options.method);

    // One cloud = one work item: the serving-shaped decomposition.
    // Each item runs its own stages sequentially (inner parallelism
    // would only contend with other requests for the same pool), so
    // every per-cloud result is trivially identical to a sequential
    // run of that cloud.
    core::parallelFor(
        pool.get(), 0, clouds.size(), 1,
        [&](std::size_t cb, std::size_t ce) {
            for (std::size_t i = cb; i < ce; ++i) {
                const data::PointCloud &cloud = clouds[i];
                fc_assert(!cloud.empty(),
                          "runBatch requires non-empty clouds (cloud "
                          "%zu is empty)",
                          i);
                part::PartitionConfig config;
                config.threshold = options.threshold;
                const part::PartitionResult part =
                    partitioner->partition(cloud, config, nullptr);

                BatchResult &out = results[i];
                ops::FpsOptions fps;
                fps.window_check = options.window_check;
                out.sampled = ops::blockFarthestPointSample(
                    cloud, part.tree, request.sample_rate, fps,
                    nullptr);
                out.grouped = ops::blockBallQuery(
                    cloud, part.tree, out.sampled, request.radius,
                    request.neighbors, nullptr);
                out.gathered = ops::blockGatherNeighborhoods(
                    cloud, part.tree, out.sampled.indices,
                    out.sampled.leaf_offsets, out.grouped, nullptr);
                out.partition_stats = part.stats;
                out.num_blocks = part.tree.leaves().size();
            }
        });
    return results;
}

} // namespace fc
