#include "core/pipeline.h"

#include "common/logging.h"

namespace fc {

FractalCloudPipeline::FractalCloudPipeline(data::PointCloud cloud,
                                           const PipelineOptions &options)
    : cloud_(std::move(cloud)), options_(options)
{
    fc_assert(!cloud_.empty(), "pipeline requires a non-empty cloud");
    const auto partitioner = part::makePartitioner(options_.method);
    part::PartitionConfig config;
    config.threshold = options_.threshold;
    partition_ = partitioner->partition(cloud_, config);
}

data::PointCloud
FractalCloudPipeline::reordered() const
{
    return cloud_.permuted(partition_.tree.order());
}

ops::BlockSampleResult
FractalCloudPipeline::sample(double rate) const
{
    ops::FpsOptions fps;
    fps.window_check = options_.window_check;
    return ops::blockFarthestPointSample(cloud_, partition_.tree, rate,
                                         fps);
}

ops::NeighborResult
FractalCloudPipeline::group(const ops::BlockSampleResult &centers,
                            float radius, std::size_t k) const
{
    return ops::blockBallQuery(cloud_, partition_.tree, centers, radius,
                               k);
}

ops::GatherResult
FractalCloudPipeline::gather(const ops::BlockSampleResult &centers,
                             const ops::NeighborResult &neighbors) const
{
    return ops::blockGatherNeighborhoods(cloud_, partition_.tree,
                                         centers.indices,
                                         centers.leaf_offsets, neighbors);
}

ops::InterpolateResult
FractalCloudPipeline::interpolate(
    const ops::BlockSampleResult &sampled,
    const std::vector<float> &known_features, std::size_t channels,
    std::size_t k) const
{
    return ops::blockInterpolate(cloud_, partition_.tree, sampled,
                                 known_features, channels, k);
}

nn::InferenceResult
FractalCloudPipeline::infer(const nn::Network &network) const
{
    nn::BackendOptions backend;
    backend.method = options_.method;
    backend.threshold = options_.threshold;
    return network.run(cloud_, backend);
}

accel::RunReport
FractalCloudPipeline::estimate(const nn::ModelConfig &model) const
{
    const accel::AcceleratorModel accel =
        accel::makeFractalCloud(options_.threshold);
    const accel::NetworkShape shape =
        accel::buildNetworkShape(model, cloud_.size());
    const accel::BlockSummary blocks =
        accel::summarizeBlocks(partition_);
    return accel.runShape(shape, blocks);
}

} // namespace fc
