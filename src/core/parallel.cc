#include "core/parallel.h"

#include "common/logging.h"
#include "core/topology.h"

namespace fc::core {

unsigned
ThreadPool::resolveThreadCount(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads, bool standalone,
                       std::vector<int> pin_cpus)
    : num_threads_(resolveThreadCount(num_threads)),
      pin_cpus_(std::move(pin_cpus))
{
    // Fork/join mode: the joining thread is the last worker
    // (help-join), so a pool of n threads spawns n - 1 and a pool of
    // 1 spawns none. Standalone mode has no joining caller, so all n
    // workers are real threads.
    const unsigned spawn = standalone ? num_threads_ : num_threads_ - 1;
    workers_.reserve(spawn);
    for (unsigned t = 0; t < spawn; ++t)
        workers_.emplace_back([this, t] {
            // Best-effort affinity before any work: a refused call
            // (restricted runner, non-Linux) leaves the worker
            // unpinned — identical results, only locality lost.
            if (!pin_cpus_.empty())
                (void)pinCurrentThreadTo(
                    pin_cpus_[t % pin_cpus_.size()]);
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        fc_assert(queue_.empty() && detached_.empty(),
                  "thread pool destroyed with %zu tasks still queued",
                  queue_.size() + detached_.size());
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submitDetachedTask(InlineTask task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fc_assert(!stop_, "submitDetached on a stopped pool");
        // Only dedicated workers run the detached lane (TaskGroup
        // waiters never touch it), so a 0-worker fork/join pool would
        // park the task forever.
        fc_assert(!workers_.empty(),
                  "submitDetached needs worker threads (construct the "
                  "pool with standalone=true)");
        detached_.push(std::move(task));
    }
    // notify_all, not notify_one: a TaskGroup waiter shares this CV
    // but never takes detached work, so a single wake could land on
    // it and leave the idle worker asleep until the next chunk
    // completion. Detached submissions are coarse; the broadcast is
    // noise-free in practice.
    work_cv_.notify_all();
}

void
ThreadPool::enqueueForkJoin(InlineTask task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        InlineTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] {
                return stop_ || !queue_.empty() || !detached_.empty();
            });
            // Fork/join chunks first: they unblock waiters and keep
            // spilled requests moving; detached requests follow.
            if (!queue_.empty()) {
                task = queue_.pop();
            } else if (!detached_.empty()) {
                task = detached_.pop();
            } else {
                return; // stop_ set and nothing left to run
            }
        }
        task();
    }
}

TaskGroup::TaskGroup(ThreadPool *pool)
    : pool_(pool && pool->numThreads() > 1 ? pool : nullptr)
{
}

TaskGroup::~TaskGroup()
{
    // Tasks reference this group; never let it die before they end.
    if (pending_.load(std::memory_order_acquire) > 0) {
        try {
            wait();
        } catch (...) {
            // wait() already ran every task; swallow on this
            // destructor-only path (normal use calls wait() itself).
        }
    }
}

void
TaskGroup::record(std::exception_ptr e)
{
    std::lock_guard<std::mutex> lock(exception_mutex_);
    if (!exception_)
        exception_ = e;
}

void
TaskGroup::finish(ThreadPool *pool)
{
    {
        // Decrement under the pool mutex so a waiter holding it
        // cannot miss the final notification. Last access to `this`.
        std::lock_guard<std::mutex> lock(pool->mutex_);
        pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
    pool->work_cv_.notify_all();
}

void
TaskGroup::wait()
{
    if (pool_ != nullptr) {
        std::unique_lock<std::mutex> lock(pool_->mutex_);
        while (pending_.load(std::memory_order_acquire) > 0) {
            if (!pool_->queue_.empty()) {
                // Help: run queued tasks instead of blocking. The
                // task may belong to another group — draining any
                // work keeps the whole pool making progress and makes
                // nested fork/join deadlock-free.
                InlineTask task = pool_->queue_.pop();
                lock.unlock();
                task();
                lock.lock();
            } else {
                pool_->work_cv_.wait(lock, [this] {
                    return pending_.load(std::memory_order_acquire) ==
                               0 ||
                           !pool_->queue_.empty();
                });
            }
        }
    }
    std::exception_ptr e;
    {
        std::lock_guard<std::mutex> lock(exception_mutex_);
        e = exception_;
        exception_ = nullptr;
    }
    if (e)
        std::rethrow_exception(e);
}

void
parallelForImpl(ThreadPool *pool, std::size_t begin, std::size_t end,
                std::size_t grain, detail::ChunkRef fn)
{
    TaskGroup group(pool);
    for (std::size_t cb = begin; cb < end; cb += grain) {
        const std::size_t ce = std::min(cb + grain, end);
        group.run([fn, cb, ce] { fn.call(fn.ctx, cb, ce); });
    }
    group.wait();
}

} // namespace fc::core
