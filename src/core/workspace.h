/**
 * @file
 * The allocation-free steady state: core::Arena and core::Workspace.
 *
 * The paper's headline win is keeping point-cloud intermediates
 * on-chip instead of round-tripping DRAM; the software analogue is
 * keeping a request's intermediates in memory that is already warm
 * instead of round-tripping the heap allocator. Every hot-path layer
 * draws its temporaries from a Workspace:
 *
 *   - Arena: a monotonic bump allocator for transient scratch that
 *     lives no longer than one request (FPS distance tables, partition
 *     split records, inverse permutations). reset() rewinds the bump
 *     cursor but keeps every chunk, so a warm request of the same
 *     shape replays into memory allocated by the cold one and touches
 *     the heap zero times. Allocation is thread-safe (block ops
 *     allocate per-leaf scratch from inside pool tasks); all
 *     allocations are 64-byte aligned and size-rounded so the total
 *     footprint is independent of allocation order.
 *
 *   - Workspace: one Arena plus named slots — persistent, default-
 *     constructed objects (vectors, tensors, whole result structs)
 *     keyed by a short name, created on first use and reused across
 *     requests. Slots hold buffers whose *capacity* must survive
 *     reset() (a cleared std::vector keeps its allocation), which is
 *     what turns the second same-shape request into zero heap
 *     allocations: every resize/assign fits the capacity the first
 *     request grew.
 *
 * Contract: slot() and reset() are owner-only (one request at a time);
 * arena().allocate() may be called concurrently from pool tasks
 * processing that request. Growth happens only on first-seen larger
 * shapes — see ops/, nn/network.cc, and serve/async_pipeline.h for
 * the layers drawing from it, and tests/test_workspace.cc for the
 * counting-allocator proof.
 */

#ifndef FC_CORE_WORKSPACE_H
#define FC_CORE_WORKSPACE_H

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <typeinfo>
#include <vector>

#include "common/logging.h"

namespace fc::core {

/**
 * Monotonic bump allocator over a chain of heap chunks.
 *
 * allocate() bumps within the active chunk, advances to the next
 * retained chunk when the active one is exhausted, and touches the
 * heap only when every retained chunk is full (cold growth). reset()
 * rewinds to the first chunk without releasing anything, so a
 * same-shape replay performs zero heap allocations. Memory is never
 * returned until destruction.
 */
class Arena
{
  public:
    /** Alignment (and size granularity) of every allocation: one
     *  cache line, so parallel writers never share a line and totals
     *  are independent of allocation order. */
    static constexpr std::size_t kAlignment = 64;

    Arena() = default;
    ~Arena() = default;

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * @p bytes of kAlignment-aligned storage, uninitialized. Valid
     * until reset(). Thread-safe. Zero-byte requests return a
     * non-null dummy.
     */
    void *allocate(std::size_t bytes);

    /** Typed uninitialized span of @p count elements. */
    template <typename T>
    std::span<T>
    allocSpan(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without destructors");
        if (count == 0)
            return {};
        return {static_cast<T *>(allocate(count * sizeof(T))), count};
    }

    /** Typed span with every element set to @p fill. */
    template <typename T>
    std::span<T>
    allocSpan(std::size_t count, const T &fill)
    {
        std::span<T> s = allocSpan<T>(count);
        for (T &v : s)
            ::new (static_cast<void *>(&v)) T(fill);
        return s;
    }

    /** Construct one T in arena storage (no destructor will run). */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without destructors");
        return ::new (allocate(sizeof(T))) T(std::forward<Args>(args)...);
    }

    /** Rewind the cursor; every chunk is retained for reuse. */
    void reset();

    /** Total chunk capacity held (the high-water footprint). */
    std::size_t bytesReserved() const;

    /** Bytes handed out since the last reset(). */
    std::size_t bytesUsed() const;

    /** Heap chunks held (steady state: stops growing). */
    std::size_t chunkCount() const;

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> storage; ///< unaligned base
        std::byte *data = nullptr;            ///< 64B-aligned start
        std::size_t capacity = 0;
    };

    mutable std::mutex mutex_;
    std::vector<Chunk> chunks_;
    std::size_t active_ = 0; ///< chunk currently being bumped
    std::size_t offset_ = 0; ///< bump cursor within the active chunk
    std::size_t used_ = 0;   ///< bytes handed out since reset()
};

/**
 * One Arena plus named, shape-keyed scratch slots.
 *
 * slot<T>(name) returns a persistent T default-constructed on first
 * use; the same name must always be requested with the same T.
 * Consumers resize slot containers to their current shape — repeated
 * same-shape use therefore reuses warm capacity, and growth happens
 * only on first-seen larger shapes. reset() starts a new request:
 * the arena rewinds, the slots persist.
 */
class Workspace
{
  public:
    Workspace() = default;

    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

    Arena &arena() { return arena_; }

    /** Begin a new request: rewind the arena, keep every slot. */
    void reset() { arena_.reset(); }

    /** The named slot, default-constructed on first use. */
    template <typename T>
    T &
    slot(std::string_view name)
    {
        auto it = slots_.find(name);
        if (it == slots_.end()) {
            it = slots_
                     .emplace(std::string(name),
                              Slot{{new T(), [](void *p) {
                                        delete static_cast<T *>(p);
                                    }},
                                   &typeid(T)})
                     .first;
        }
        fc_assert(*it->second.type == typeid(T),
                  "workspace slot '%.*s' requested as %s but holds %s",
                  static_cast<int>(name.size()), name.data(),
                  typeid(T).name(), it->second.type->name());
        return *static_cast<T *>(it->second.object.get());
    }

    std::size_t slotCount() const { return slots_.size(); }

  private:
    struct Slot
    {
        std::unique_ptr<void, void (*)(void *)> object;
        const std::type_info *type;
    };

    Arena arena_;

    /** Ordered map with a transparent comparator: steady-state
     *  lookups by string_view never construct a std::string. */
    std::map<std::string, Slot, std::less<>> slots_;
};

} // namespace fc::core

#endif // FC_CORE_WORKSPACE_H
