/**
 * @file
 * AVX2+FMA+F16C kernel implementations of core/simd.h.
 *
 * This is the only translation unit compiled with -mavx2 -mfma -mf16c
 * (per-file COMPILE_OPTIONS in CMakeLists.txt); everything here is
 * additionally guarded by a cpuid check at runtime, so the library
 * binary stays runnable on plain x86-64. On builds without those
 * flags (other architectures, or a compiler rejecting them),
 * avx2Kernels() returns null and dispatch stays scalar.
 *
 * Bit-identity notes (the contract tests/test_simd.cc asserts):
 *
 *   - fpsUpdate / distance2Range avoid FMA on purpose: each lane
 *     evaluates ((dx*dx + dy*dy) + dz*dz) exactly like the scalar
 *     expression, so per-element distances are bit-equal.
 *   - The running min uses _mm256_min_ps(d, old) = (d < old) ? d : old,
 *     which matches the scalar comparison for every input including
 *     NaNs (a NaN distance keeps the old entry; a NaN entry stays).
 *   - The argmax keeps per-lane running bests with a strictly-greater
 *     compare, then resolves ties cross-lane by smallest index — the
 *     earliest maximal index, exactly the serial tie-break.
 *   - dotAcc / dotAccFp16 share one accumulation scheme (two 8-lane
 *     FMA accumulators, fixed-order horizontal sum, scalar remainder)
 *     so the fp32- and fp16-storage MLP paths agree bitwise on equal
 *     inputs; versus the scalar running sum they are ULP-bounded, not
 *     bit-equal.
 *   - F16C conversions round to nearest-even like the software
 *     converters; only NaN payloads may differ.
 */

#include "core/simd.h"

#include "common/fp16.h"

#if defined(__AVX2__) && defined(__FMA__) && defined(__F16C__)
#include <immintrin.h>

#include <algorithm>

namespace fc::core::simd {

namespace {

/** Fixed-order horizontal sum: (l0+l4)+(l2+l6) pairs first, then the
 *  two remaining partials — one deterministic association shared by
 *  both dot kernels. */
inline float
hsum8(__m256 acc)
{
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
    return _mm_cvtss_f32(s);
}

/** 8 candidate positions' coordinates, contiguous or gathered. */
inline void
loadLanes(const SoaView &pts, const PointIdx *order,
          std::uint32_t identity_base, std::uint32_t i, __m256 &px,
          __m256 &py, __m256 &pz)
{
    if (order != nullptr) {
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(order + i));
        px = _mm256_i32gather_ps(pts.xs, idx, 4);
        py = _mm256_i32gather_ps(pts.ys, idx, 4);
        pz = _mm256_i32gather_ps(pts.zs, idx, 4);
    } else {
        px = _mm256_loadu_ps(pts.xs + identity_base + i);
        py = _mm256_loadu_ps(pts.ys + identity_base + i);
        pz = _mm256_loadu_ps(pts.zs + identity_base + i);
    }
}

FpsPartial
fpsUpdateAvx2(const SoaView &pts, const PointIdx *order,
              std::uint32_t identity_base, const Vec3 &query,
              float *min_dist, const std::uint8_t *sampled,
              std::uint32_t begin, std::uint32_t end)
{
    FpsPartial p;
    const __m256 qx = _mm256_set1_ps(query.x);
    const __m256 qy = _mm256_set1_ps(query.y);
    const __m256 qz = _mm256_set1_ps(query.z);
    const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    __m256 best_v = _mm256_set1_ps(-1.0f);
    __m256i bidx_v = _mm256_setzero_si256();
    std::uint32_t i = begin;
    bool any_vec = false;
    for (; i + 8 <= end; i += 8) {
        const __m128i s8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(sampled + i));
        const __m256i s32 = _mm256_cvtepu8_epi32(s8);
        const __m256 smask = _mm256_castsi256_ps(
            _mm256_cmpgt_epi32(s32, _mm256_setzero_si256()));
        p.sampled += static_cast<std::uint32_t>(__builtin_popcount(
            static_cast<unsigned>(_mm256_movemask_ps(smask))));

        __m256 px, py, pz;
        loadLanes(pts, order, identity_base, i, px, py, pz);
        const __m256 dx = _mm256_sub_ps(qx, px);
        const __m256 dy = _mm256_sub_ps(qy, py);
        const __m256 dz = _mm256_sub_ps(qz, pz);
        // Scalar association, no FMA: ((dx*dx + dy*dy) + dz*dz).
        const __m256 d = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
            _mm256_mul_ps(dz, dz));

        const __m256 old = _mm256_loadu_ps(min_dist + i);
        // (d < old) ? d : old, NaN semantics matching the scalar test.
        const __m256 newmin = _mm256_min_ps(d, old);
        const __m256 upd = _mm256_blendv_ps(newmin, old, smask);
        _mm256_storeu_ps(min_dist + i, upd);

        const __m256 gt = _mm256_cmp_ps(upd, best_v, _CMP_GT_OQ);
        const __m256 take = _mm256_andnot_ps(smask, gt);
        best_v = _mm256_blendv_ps(best_v, upd, take);
        const __m256i cur_iv = _mm256_add_epi32(
            _mm256_set1_epi32(static_cast<int>(i)), lane);
        bidx_v = _mm256_castps_si256(
            _mm256_blendv_ps(_mm256_castsi256_ps(bidx_v),
                             _mm256_castsi256_ps(cur_iv), take));
        any_vec = true;
    }
    if (any_vec) {
        alignas(32) float vals[8];
        alignas(32) std::int32_t idxs[8];
        _mm256_store_ps(vals, best_v);
        _mm256_store_si256(reinterpret_cast<__m256i *>(idxs), bidx_v);
        float m = -1.0f;
        for (int j = 0; j < 8; ++j)
            if (vals[j] > m)
                m = vals[j];
        if (m > p.best) {
            // A lane's stored index is its first occurrence of the
            // lane max, so the smallest index among max lanes is the
            // first global occurrence — the serial tie-break.
            std::uint32_t pos = 0xffffffffu;
            for (int j = 0; j < 8; ++j)
                if (vals[j] == m)
                    pos = std::min(
                        pos, static_cast<std::uint32_t>(idxs[j]));
            p.best = m;
            p.pos = pos;
        }
    }
    // Remainder lanes continue the running argmax in index order.
    for (; i < end; ++i) {
        if (sampled[i]) {
            ++p.sampled;
            continue;
        }
        const PointIdx idx =
            order != nullptr ? order[i] : identity_base + i;
        const float dx = query.x - pts.xs[idx];
        const float dy = query.y - pts.ys[idx];
        const float dz = query.z - pts.zs[idx];
        const float d = dx * dx + dy * dy + dz * dz;
        if (d < min_dist[i])
            min_dist[i] = d;
        if (min_dist[i] > p.best) {
            p.best = min_dist[i];
            p.pos = i;
        }
    }
    return p;
}

void
distance2RangeAvx2(const SoaView &pts, const PointIdx *order,
                   std::uint32_t identity_base, const Vec3 &query,
                   std::uint32_t begin, std::uint32_t end, float *out)
{
    const __m256 qx = _mm256_set1_ps(query.x);
    const __m256 qy = _mm256_set1_ps(query.y);
    const __m256 qz = _mm256_set1_ps(query.z);
    std::uint32_t i = begin;
    for (; i + 8 <= end; i += 8) {
        __m256 px, py, pz;
        loadLanes(pts, order, identity_base, i, px, py, pz);
        const __m256 dx = _mm256_sub_ps(qx, px);
        const __m256 dy = _mm256_sub_ps(qy, py);
        const __m256 dz = _mm256_sub_ps(qz, pz);
        const __m256 d = _mm256_add_ps(
            _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
            _mm256_mul_ps(dz, dz));
        _mm256_storeu_ps(out + (i - begin), d);
    }
    for (; i < end; ++i) {
        const PointIdx idx =
            order != nullptr ? order[i] : identity_base + i;
        const float dx = query.x - pts.xs[idx];
        const float dy = query.y - pts.ys[idx];
        const float dz = query.z - pts.zs[idx];
        out[i - begin] = dx * dx + dy * dy + dz * dz;
    }
}

float
dotAccAvx2(float init, const float *a, const float *b, std::size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
    }
    if (i + 8 <= n) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        i += 8;
    }
    float acc = init + hsum8(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

float
dotAccFp16Avx2(float init, const std::uint16_t *a,
               const std::uint16_t *b, std::size_t n)
{
    // Same scheme as dotAccAvx2, loads widening through F16C — equal
    // operand values therefore give a bit-identical sum.
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    const auto load8 = [](const std::uint16_t *src) {
        return _mm256_cvtph_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(src)));
    };
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(load8(a + i), load8(b + i), acc0);
        acc1 = _mm256_fmadd_ps(load8(a + i + 8), load8(b + i + 8),
                               acc1);
    }
    if (i + 8 <= n) {
        acc0 = _mm256_fmadd_ps(load8(a + i), load8(b + i), acc0);
        i += 8;
    }
    float acc = init + hsum8(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i)
        acc += fp16BitsToFp32(a[i]) * fp16BitsToFp32(b[i]);
    return acc;
}

void
axpyAvx2(float a, const float *x, float *y, std::size_t n)
{
    // Elementwise mul then add (no FMA): bit-identical to the scalar
    // y[i] += a * x[i].
    const __m256 av = _mm256_set1_ps(a);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(x + i));
        _mm256_storeu_ps(
            y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

constexpr int kRoundNearest =
    _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

void
fp16RoundAvx2(float *values, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h =
            _mm256_cvtps_ph(_mm256_loadu_ps(values + i), kRoundNearest);
        _mm256_storeu_ps(values + i, _mm256_cvtph_ps(h));
    }
    for (; i < n; ++i)
        values[i] = fp16Round(values[i]);
}

void
fp32ToFp16Avx2(const float *src, std::uint16_t *dst, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h =
            _mm256_cvtps_ph(_mm256_loadu_ps(src + i), kRoundNearest);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i), h);
    }
    for (; i < n; ++i)
        dst[i] = fp32ToFp16Bits(src[i]);
}

void
fp16ToFp32Avx2(const std::uint16_t *src, float *dst, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i h = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
    }
    for (; i < n; ++i)
        dst[i] = fp16BitsToFp32(src[i]);
}

} // namespace

namespace detail {

const Kernels *
avx2Kernels()
{
    static const Kernels table = {
        &fpsUpdateAvx2, &distance2RangeAvx2, &dotAccAvx2,
        &dotAccFp16Avx2, &axpyAvx2,          &fp16RoundAvx2,
        &fp32ToFp16Avx2, &fp16ToFp32Avx2,
    };
    static const bool supported = __builtin_cpu_supports("avx2") &&
                                  __builtin_cpu_supports("fma") &&
                                  __builtin_cpu_supports("f16c");
    return supported ? &table : nullptr;
}

} // namespace detail

} // namespace fc::core::simd

#else // !(__AVX2__ && __FMA__ && __F16C__)

namespace fc::core::simd::detail {

const Kernels *
avx2Kernels()
{
    return nullptr;
}

} // namespace fc::core::simd::detail

#endif
