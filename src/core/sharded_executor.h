/**
 * @file
 * The sharded execution layer: N independent ThreadPool shards plus a
 * deterministic consistent-hash shard map.
 *
 * The paper's block-parallel design assumes many independent on-chip
 * blocks that can be placed and drained independently; one global
 * FIFO pool serializes that freedom at the host level. A
 * ShardedExecutor instead owns N ThreadPool shards — each with its
 * own queue, workers, and condition variable — so multi-socket hosts
 * can run one shard per socket (queue contention and cache traffic
 * stay shard-local) and the serving layer can place whole requests
 * onto shards deterministically.
 *
 * Placement is by consistent hashing (ShardMap): each shard owns
 * kReplicas pseudo-random points on a 64-bit ring, and a key maps to
 * the shard owning the first ring point at or after the key's hash.
 * The map is a pure function of the shard count, so:
 *
 *   - the same key always lands on the same shard (affinity: a
 *     client session keyed by id keeps hitting warm caches), and
 *   - changing the shard count from N to N+1 remaps only the keys
 *     the new shard's points capture (~1/(N+1) of them) instead of
 *     reshuffling everything, which is what makes shard-count
 *     reconfiguration cheap for sticky clients.
 *
 * A ShardedExecutor with one shard is exactly one ThreadPool — the
 * single-pool runtime of PR 1-4, bit for bit. Every operation in the
 * library is deterministic with respect to its pool, so WHERE a
 * request runs never changes WHAT it computes; shards trade only
 * placement, contention, and tail latency.
 */

#ifndef FC_CORE_SHARDED_EXECUTOR_H
#define FC_CORE_SHARDED_EXECUTOR_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/parallel.h"

namespace fc::core {

namespace metrics {
class Registry;
class Counter;
} // namespace metrics

/**
 * Deterministic consistent-hash ring: shard placement as a pure
 * function of (key, num_shards). Cheap to copy; the serving scheduler
 * and the executor each build their own identical instance.
 */
class ShardMap
{
  public:
    /** Ring points per shard. More replicas = smoother key balance;
     *  64 keeps the worst shard within a few percent of fair share
     *  while the ring stays cache-resident. */
    static constexpr unsigned kReplicas = 64;

    explicit ShardMap(unsigned num_shards);

    unsigned numShards() const { return num_shards_; }

    /** Shard owning @p key: binary search for the first ring point at
     *  or after hash(key), wrapping to the first point. */
    unsigned shardFor(std::uint64_t key) const;

    /** The 64-bit mix (splitmix64) both ring points and keys go
     *  through; exposed so tests can reason about the ring. */
    static std::uint64_t mix(std::uint64_t x);

  private:
    struct Point
    {
        std::uint64_t hash;
        std::uint32_t shard;
    };

    unsigned num_shards_;
    std::vector<Point> ring_; ///< sorted by hash
};

/**
 * N ThreadPool shards behind one object. Shards are fully
 * independent: separate queues, workers, mutexes, and condition
 * variables — there is no cross-shard stealing at the pool level.
 * Work-conserving policies live one layer up (the serving scheduler
 * decides per stage which shard's idle threads to borrow), which
 * keeps this class a pure placement/ownership primitive.
 */
class ShardedExecutor
{
  public:
    /**
     * @param num_shards       >= 1 shards (1 = the single-pool
     *                         runtime, unchanged).
     * @param threads_per_shard ThreadPool size per shard (0 = all
     *                         hardware threads — note that each shard
     *                         then gets a full-size pool; multi-shard
     *                         deployments should size explicitly).
     * @param standalone       passed through to every ThreadPool (see
     *                         ThreadPool::ThreadPool).
     * @param pin_workers      pin each shard's workers to a disjoint
     *                         cpu set (shard s prefers NUMA node
     *                         s % nodes; see core/topology.h) so a
     *                         shard's arenas stay in one socket's
     *                         pages. Best-effort and overridable at
     *                         runtime via FC_NO_PIN=1; never affects
     *                         results, only locality.
     */
    explicit ShardedExecutor(unsigned num_shards,
                             unsigned threads_per_shard = 0,
                             bool standalone = false,
                             bool pin_workers = false);

    ShardedExecutor(const ShardedExecutor &) = delete;
    ShardedExecutor &operator=(const ShardedExecutor &) = delete;

    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Resolved per-shard thread count (>= 1, uniform across shards). */
    unsigned threadsPerShard() const
    {
        return shards_.front()->numThreads();
    }

    /** Total worker budget across all shards. */
    unsigned totalThreads() const
    {
        return numShards() * threadsPerShard();
    }

    ThreadPool &
    shard(unsigned index)
    {
        return *shards_[index];
    }

    /** Whether worker pinning was requested, allowed (FC_NO_PIN
     *  unset), and cpu sets were computed. Individual affinity calls
     *  remain best-effort; this reports the policy, not per-thread
     *  success. */
    bool pinned() const { return pinned_; }

    /**
     * Submit a detached (whole-request) task onto @p shard's pool,
     * counting it against the shard's task telemetry. The serving
     * layer submits through here instead of shard(i).submitDetached
     * so per-shard task counts cover every request task. Templated
     * so small callables ride the pool's InlineTask slots without a
     * std::function materialization (allocation-free warm).
     */
    template <typename Fn>
    void
    submitDetached(unsigned shard, Fn &&task)
    {
        noteSubmitted(shard);
        shards_[shard]->submitDetached(std::forward<Fn>(task));
    }

    /** Detached tasks submitted onto @p shard so far (monotonic). */
    std::uint64_t tasksSubmitted(unsigned shard) const;

    /**
     * Register per-shard task counters
     * (core.executor.tasks{shard=i}) into @p registry; subsequent
     * submitDetached calls count against them too. @p registry must
     * outlive this executor. Call at most once.
     */
    void attachMetrics(metrics::Registry &registry);

    const ShardMap &map() const { return map_; }

    /** Consistent-hash placement (see ShardMap). */
    unsigned
    shardForKey(std::uint64_t key) const
    {
        return map_.shardFor(key);
    }

  private:
    /** Bounds-check @p shard and bump its task counters (the
     *  out-of-line half of submitDetached). */
    void noteSubmitted(unsigned shard);

    std::vector<std::unique_ptr<ThreadPool>> shards_;
    ShardMap map_;
    bool pinned_ = false;

    /** Per-shard detached-task counts (always maintained; the array
     *  form keeps the atomics fixed in place). */
    std::unique_ptr<std::atomic<std::uint64_t>[]> task_counts_;

    /** Registry-backed mirrors of task_counts_; empty until
     *  attachMetrics. */
    std::vector<metrics::Counter *> task_counters_;
};

} // namespace fc::core

#endif // FC_CORE_SHARDED_EXECUTOR_H
