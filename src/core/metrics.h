/**
 * @file
 * Lock-cheap serving metrics: counters, gauges, and log-scale latency
 * histograms behind a name-keyed registry.
 *
 * Design constraints, in order:
 *
 *   1. Hot-path mutation must be cheap enough to leave on in
 *      production: a Counter::add is one relaxed fetch_add on a
 *      cache-line-padded stripe picked by thread (no sharing between
 *      steadily-running worker threads), a Histogram::record is one
 *      relaxed fetch_add on a bucket plus a sum update. No locks, no
 *      allocation, no stores to shared hot lines.
 *   2. Zero allocations after registration: every instrument is
 *      fixed-size storage created once by Registry::counter/gauge/
 *      histogram. Components register during construction, keep the
 *      returned pointer, and mutate through it; repeated lookups by
 *      name are transparent (string_view, no temporary std::string).
 *   3. Near-zero cost when sampling is off: every mutation first
 *      checks one global relaxed atomic flag (setSampling). With the
 *      flag clear the instrument body is a load + predicted branch.
 *   4. Reads are rare and may be slow: value() sums stripes,
 *      percentile() walks buckets, renderText/renderJson serialize
 *      the whole registry under its registration mutex. Readers see
 *      each instrument atomically enough for telemetry (counts may be
 *      mid-update across instruments; no torn single values).
 *
 * Histogram buckets are fixed log-scale with 4 sub-buckets per octave
 * (value resolution ~25%, enough for p50/p95/p99 of latency tails):
 * values 0..2^kSubBits map exactly, beyond that bucket
 * ((k - kSubBits) << kSubBits) + sub covers
 * [2^k + sub*2^(k-kSubBits), 2^k + (sub+1)*2^(k-kSubBits)) for
 * k = floor(log2 v). 252 buckets span the full uint64 range, so one
 * histogram is ~2 KB and a per-(shard x class) family stays
 * cache-resident.
 *
 * The registry renders a stable line-oriented text format (one line
 * per instrument, sorted by name) designed to be served verbatim as a
 * /stats endpoint, plus a machine-readable JSON snapshot:
 *
 *   serve.pops{shard=0,class=interactive} counter 42
 *   serve.queue_depth{shard=0,class=batch} gauge 3
 *   serve.wait_us{shard=0,class=batch} histogram count=7 sum=812 \
 *       p50=96 p95=255 p99=255 max=241
 *
 * Label syntax inside the name is opaque to the registry — it sorts
 * and prints names as flat strings; the {k=v,...} convention is just
 * that, a convention shared by the instrumented layers.
 */

#ifndef FC_CORE_METRICS_H
#define FC_CORE_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace fc::core::metrics {

/** Global sampling switch (see samplingEnabled below): false turns
 *  every instrument mutation into a relaxed load + branch (reads keep
 *  working on the frozen values). Defaults to on. */
void setSampling(bool enabled);

namespace detail {

/** Global flag behind samplingEnabled(); inline so the hot-path check
 *  inlines into instrument bodies. */
inline std::atomic<bool> g_sampling{true};

/** Small dense per-thread index for stripe selection: assigned on
 *  first use per thread, so a fixed worker set occupies distinct
 *  stripes (modulo the stripe count) instead of hashing collisions. */
unsigned threadStripe();

} // namespace detail

/** True while instruments accept mutations (the global switch). */
inline bool
samplingEnabled()
{
    return detail::g_sampling.load(std::memory_order_relaxed);
}

/**
 * Monotonic counter, striped across cache-line-padded slots so
 * concurrent writers on different threads do not share a line.
 * value() aggregates on read.
 */
class Counter
{
  public:
    static constexpr unsigned kStripes = 8;

    void
    add(std::uint64_t delta = 1)
    {
        if (!samplingEnabled())
            return;
        stripes_[detail::threadStripe() & (kStripes - 1)].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        for (const Stripe &stripe : stripes_)
            total += stripe.value.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset()
    {
        for (Stripe &stripe : stripes_)
            stripe.value.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Stripe
    {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<Stripe, kStripes> stripes_{};
};

/** Last-writer-wins instantaneous value (queue depths, config). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        if (!samplingEnabled())
            return;
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        if (!samplingEnabled())
            return;
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Ungated set, for configuration gauges written once at
     *  registration time: the active config must surface in /stats
     *  even when a deployment starts with sampling off. */
    void
    forceSet(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket log-scale histogram (see file comment for the bucket
 * scheme). Values are plain uint64 — the instrumented layers record
 * microseconds, but the histogram itself is unit-agnostic.
 */
class Histogram
{
  public:
    /** Sub-buckets per octave = 1 << kSubBits (resolution ~25%). */
    static constexpr unsigned kSubBits = 2;

    /** Bucket count covering all of uint64: exact buckets 0..2^kSubBits
     *  plus (64 - kSubBits) octaves of 2^kSubBits sub-buckets. */
    static constexpr unsigned kBuckets =
        (1u << kSubBits) + ((64 - kSubBits) << kSubBits);

    /** Bucket holding @p v; monotonic in v. */
    static unsigned
    bucketIndex(std::uint64_t v)
    {
        if (v < (1ull << kSubBits))
            return static_cast<unsigned>(v);
        const unsigned k = std::bit_width(v) - 1; // floor(log2 v)
        const unsigned sub = static_cast<unsigned>(
            (v >> (k - kSubBits)) & ((1u << kSubBits) - 1));
        return ((k - kSubBits) << kSubBits) + sub + (1u << kSubBits);
    }

    /** Largest value mapping to bucket @p index (the value reported
     *  for percentiles landing in it). */
    static std::uint64_t bucketUpperBound(unsigned index);

    void
    record(std::uint64_t v)
    {
        if (!samplingEnabled())
            return;
        buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        // Relaxed CAS max: losers retry; the loop is contention-bounded
        // because a failed CAS means someone else raised the bar.
        std::uint64_t seen = max_.load(std::memory_order_relaxed);
        while (v > seen && !max_.compare_exchange_weak(
                               seen, v, std::memory_order_relaxed))
            ;
    }

    std::uint64_t count() const;
    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    std::uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    /**
     * Value at quantile @p q in [0, 1]: the upper bound of the bucket
     * containing the ceil(q * count)-th recorded value (0 when
     * empty). Accurate to the ~25% bucket resolution, which is what a
     * latency SLO check needs; exact ranks would require storing
     * samples.
     */
    std::uint64_t percentile(double q) const;

    void reset();

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * Name-keyed instrument registry. Registration (and re-lookup by
 * name) takes a mutex and may allocate; mutation through the returned
 * pointers is lock- and allocation-free. Instruments live until the
 * registry dies — there is no unregistration, so a component may
 * cache pointers for its own lifetime when it owns (or outlives) the
 * registry.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Find-or-create. The name (including any {label=value} suffix)
     *  is the identity; requesting an existing name returns the same
     *  instrument. One name holds one instrument kind — re-requesting
     *  it as a different kind is a logic error (asserted). */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /**
     * Append the stable line-oriented text format (one line per
     * instrument, sorted by name; see file comment). A socket
     * frontend can serve the result verbatim as /stats.
     */
    void renderText(std::string &out) const;

    /** Append a machine-readable JSON snapshot:
     *  {"counters":{...},"gauges":{...},"histograms":{name:
     *  {"count":..,"sum":..,"p50":..,"p95":..,"p99":..,"max":..}}}. */
    void renderJson(std::string &out) const;

    /** Zero every instrument (bench trials, test isolation).
     *  Registration survives — pointers stay valid. */
    void reset();

  private:
    /** Transparent less<> so lookups take string_view without
     *  materializing a std::string (no allocation on re-lookup). */
    template <typename T>
    using NameMap = std::map<std::string, std::unique_ptr<T>, std::less<>>;

    mutable std::mutex mutex_;
    NameMap<Counter> counters_;
    NameMap<Gauge> gauges_;
    NameMap<Histogram> histograms_;
};

} // namespace fc::core::metrics

#endif // FC_CORE_METRICS_H
