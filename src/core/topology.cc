#include "core/topology.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/logging.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fc::core {

namespace {

/** Parse a /sys cpulist string ("0-3,8,10-11") into cpu ids. Returns
 *  an empty list on malformed input (treated as "node absent"). */
std::vector<int>
parseCpuList(const std::string &text)
{
    std::vector<int> cpus;
    std::stringstream in(text);
    std::string range;
    while (std::getline(in, range, ',')) {
        if (range.empty() || range == "\n")
            continue;
        const std::size_t dash = range.find('-');
        try {
            if (dash == std::string::npos) {
                cpus.push_back(std::stoi(range));
            } else {
                const int lo = std::stoi(range.substr(0, dash));
                const int hi = std::stoi(range.substr(dash + 1));
                if (hi < lo)
                    return {};
                for (int c = lo; c <= hi; ++c)
                    cpus.push_back(c);
            }
        } catch (...) {
            return {};
        }
    }
    return cpus;
}

std::vector<int>
allHardwareCpus()
{
    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<int> cpus(hw == 0 ? 1 : hw);
    for (std::size_t c = 0; c < cpus.size(); ++c)
        cpus[c] = static_cast<int>(c);
    return cpus;
}

} // namespace

CpuTopology
detectCpuTopology()
{
    CpuTopology topology;
#if defined(__linux__)
    // node directories are dense (node0, node1, ...); stop at the
    // first missing one. Offline or cpu-less nodes contribute empty
    // cpulists and are skipped.
    for (int n = 0;; ++n) {
        std::ifstream in("/sys/devices/system/node/node" +
                         std::to_string(n) + "/cpulist");
        if (!in)
            break;
        std::string text;
        std::getline(in, text);
        std::vector<int> cpus = parseCpuList(text);
        if (!cpus.empty())
            topology.nodes.push_back(std::move(cpus));
    }
#endif
    if (topology.nodes.empty())
        topology.nodes.push_back(allHardwareCpus());
    return topology;
}

bool
pinningDisabled()
{
    const char *env = std::getenv("FC_NO_PIN");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

bool
pinCurrentThreadTo(int cpu)
{
#if defined(__linux__)
    if (cpu < 0 || static_cast<unsigned>(cpu) >= CPU_SETSIZE)
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) ==
           0;
#else
    (void)cpu;
    return false;
#endif
}

std::vector<std::vector<int>>
shardCpuAssignment(const CpuTopology &topology, unsigned num_shards,
                   unsigned threads_per_shard)
{
    fc_assert(num_shards >= 1, "cpu assignment needs >= 1 shard");
    fc_assert(threads_per_shard >= 1,
              "cpu assignment needs >= 1 thread per shard");
    const std::size_t num_nodes = topology.nodes.size();
    fc_assert(num_nodes >= 1 && topology.cpuCount() >= 1,
              "cpu assignment needs a non-empty topology");

    // Flat node-major cpu order, used once the disjoint budget runs
    // out: oversubscribed shards wrap over it deterministically.
    std::vector<int> flat;
    flat.reserve(topology.cpuCount());
    for (const std::vector<int> &node : topology.nodes)
        flat.insert(flat.end(), node.begin(), node.end());

    std::vector<std::size_t> next_in_node(num_nodes, 0);
    std::size_t wrap_cursor = 0;
    std::vector<std::vector<int>> sets(num_shards);
    for (unsigned s = 0; s < num_shards; ++s) {
        sets[s].reserve(threads_per_shard);
        const std::size_t preferred = s % num_nodes;
        for (unsigned t = 0; t < threads_per_shard; ++t) {
            int cpu = -1;
            // Preferred node first (locality), then the others in
            // ring order (utilization): disjoint while cpus remain.
            for (std::size_t k = 0; k < num_nodes && cpu < 0; ++k) {
                const std::size_t node = (preferred + k) % num_nodes;
                if (next_in_node[node] <
                    topology.nodes[node].size())
                    cpu = topology.nodes[node][next_in_node[node]++];
            }
            if (cpu < 0)
                cpu = flat[wrap_cursor++ % flat.size()];
            sets[s].push_back(cpu);
        }
    }
    return sets;
}

} // namespace fc::core
