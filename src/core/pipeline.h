/**
 * @file
 * FractalCloudPipeline: the library's high-level public API.
 *
 * Wraps the full flow of the paper behind one object:
 *
 *   1. Fractal partitioning of a point cloud (Alg. 1) with the DFT
 *      memory layout,
 *   2. block-parallel point operations (sampling, grouping,
 *      gathering, interpolation),
 *   3. fixed-weight PNN inference with block-wise backends, and
 *   4. hardware latency/energy estimation on the FractalCloud
 *      accelerator model.
 *
 * See examples/quickstart.cc for a guided tour.
 */

#ifndef FC_CORE_PIPELINE_H
#define FC_CORE_PIPELINE_H

#include <memory>
#include <optional>

#include "accel/accelerator.h"
#include "dataset/point_cloud.h"
#include "nn/network.h"
#include "ops/fps.h"
#include "ops/gather.h"
#include "ops/interpolate.h"
#include "ops/neighbor.h"
#include "partition/partitioner.h"

namespace fc {

/** Pipeline configuration. */
struct PipelineOptions
{
    /** Partitioning strategy (Fractal is the paper's contribution). */
    part::Method method = part::Method::Fractal;

    /** Block threshold th: 64 for object-scale inputs, 256 for
     *  scene-scale (paper §VI-B). */
    std::uint32_t threshold = 256;

    /** Model the RSPU window-check when counting sampling work. */
    bool window_check = true;
};

/**
 * A partitioned point cloud with block-parallel operations.
 *
 * The pipeline owns a copy of the cloud and its BlockTree; operations
 * return results in original-cloud index space.
 */
class FractalCloudPipeline
{
  public:
    /** Partition @p cloud according to @p options. */
    FractalCloudPipeline(data::PointCloud cloud,
                         const PipelineOptions &options = {});

    const data::PointCloud &cloud() const { return cloud_; }
    const part::BlockTree &tree() const { return partition_.tree; }
    const part::PartitionResult &partition() const { return partition_; }
    const PipelineOptions &options() const { return options_; }

    /** The cloud in DFT (block-contiguous) memory order. */
    data::PointCloud reordered() const;

    /** Block-wise farthest point sampling at a fixed rate. */
    ops::BlockSampleResult sample(double rate) const;

    /** Block-wise ball query around previously sampled centers. */
    ops::NeighborResult group(const ops::BlockSampleResult &centers,
                              float radius, std::size_t k) const;

    /** Block-wise gather of neighborhood features. */
    ops::GatherResult gather(const ops::BlockSampleResult &centers,
                             const ops::NeighborResult &neighbors) const;

    /** Block-wise 3-NN feature interpolation from sampled points. */
    ops::InterpolateResult
    interpolate(const ops::BlockSampleResult &sampled,
                const std::vector<float> &known_features,
                std::size_t channels, std::size_t k = 3) const;

    /** Run a fixed-weight network with block-wise point operations. */
    nn::InferenceResult infer(const nn::Network &network) const;

    /**
     * Estimate latency/energy of one inference on the FractalCloud
     * accelerator (cycle-level model, Table II configuration).
     */
    accel::RunReport estimate(const nn::ModelConfig &model) const;

  private:
    data::PointCloud cloud_;
    PipelineOptions options_;
    part::PartitionResult partition_;
};

} // namespace fc

#endif // FC_CORE_PIPELINE_H
