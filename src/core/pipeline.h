/**
 * @file
 * FractalCloudPipeline: the library's high-level public API.
 *
 * Wraps the full flow of the paper behind one object:
 *
 *   1. Fractal partitioning of a point cloud (Alg. 1) with the DFT
 *      memory layout,
 *   2. block-parallel point operations (sampling, grouping,
 *      gathering, interpolation),
 *   3. fixed-weight PNN inference with block-wise backends, and
 *   4. hardware latency/energy estimation on the FractalCloud
 *      accelerator model.
 *
 * Block-parallel here is literal: partitioning and the block-wise
 * ops dispatch their per-block work items over a core::ThreadPool
 * sized by PipelineOptions::num_threads, and every result is
 * bit-identical to the sequential path (num_threads = 1).
 *
 * For serving-shaped workloads, runBatch() processes many clouds
 * concurrently over one shared pool; it is the blocking wrapper
 * around the asynchronous submit/poll frontend in
 * serve/async_pipeline.h.
 *
 * See examples/quickstart.cpp for a guided tour.
 */

#ifndef FC_CORE_PIPELINE_H
#define FC_CORE_PIPELINE_H

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "accel/accelerator.h"
#include "core/parallel.h"
#include "core/workspace.h"
#include "dataset/point_cloud.h"
#include "nn/network.h"
#include "ops/fps.h"
#include "ops/gather.h"
#include "ops/interpolate.h"
#include "ops/neighbor.h"
#include "partition/partitioner.h"

namespace fc {

/** Pipeline configuration. */
struct PipelineOptions
{
    /** Partitioning strategy (Fractal is the paper's contribution). */
    part::Method method = part::Method::Fractal;

    /** Block threshold th: 64 for object-scale inputs, 256 for
     *  scene-scale (paper §VI-B). */
    std::uint32_t threshold = 256;

    /** Model the RSPU window-check when counting sampling work. */
    bool window_check = true;

    /**
     * Worker threads for block-parallel execution: 0 = all hardware
     * threads, 1 = the exact sequential path (no pool), n = a fixed
     * pool of n. Results are bit-identical at every setting.
     */
    unsigned num_threads = 0;
};

/** One request of the batched entry point. */
struct BatchRequest
{
    /** Block-wise FPS rate for the sampling stage. */
    double sample_rate = 0.25;

    /** Ball-query radius for the grouping stage. */
    float radius = 0.2f;

    /** Neighbors per center for grouping/gathering. */
    std::size_t neighbors = 32;

    /**
     * Optional end-to-end inference: run this fixed-weight network
     * over the cloud after the gather stage, with the serving pool
     * driving the network's internal stages (re-partition, block
     * ops, MLPs, pooling). Borrowed, never owned — the network must
     * outlive every request referencing it. Null = point ops only.
     */
    const nn::Network *network = nullptr;

    /**
     * Set-abstraction execution order for the optional inference
     * (see nn::Aggregation): Eager = gather-then-compute, Delayed =
     * unique-point MLPs before grouping. Ignored when network is
     * null. Per-request, so one serving fleet can mix both orders;
     * within each order results are bit-identical across shard and
     * thread counts.
     */
    nn::Aggregation aggregation = nn::Aggregation::Eager;
};

/** Per-cloud output of FractalCloudPipeline::runBatch. */
struct BatchResult
{
    ops::BlockSampleResult sampled;
    ops::NeighborResult grouped;
    ops::GatherResult gathered;
    part::PartitionStats partition_stats;
    std::size_t num_blocks = 0;

    /** Present iff BatchRequest::network was set. */
    std::optional<nn::InferenceResult> inference;
};

/**
 * A partitioned point cloud with block-parallel operations.
 *
 * The pipeline owns a copy of the cloud and its BlockTree; operations
 * return results in original-cloud index space. It also owns the
 * thread pool (when num_threads != 1) that all its operations share.
 */
class FractalCloudPipeline
{
  public:
    /** Partition @p cloud according to @p options. */
    FractalCloudPipeline(data::PointCloud cloud,
                         const PipelineOptions &options = {});

    const data::PointCloud &cloud() const { return cloud_; }
    const part::BlockTree &tree() const { return partition_.tree; }
    const part::PartitionResult &partition() const { return partition_; }
    const PipelineOptions &options() const { return options_; }

    /** The pipeline's pool; null when running sequentially. */
    core::ThreadPool *pool() const { return pool_.get(); }

    /** The cloud in DFT (block-contiguous) memory order. */
    data::PointCloud reordered() const;

    /** Block-wise farthest point sampling at a fixed rate. */
    ops::BlockSampleResult sample(double rate) const;

    /** Block-wise ball query around previously sampled centers. */
    ops::NeighborResult group(const ops::BlockSampleResult &centers,
                              float radius, std::size_t k) const;

    /** Block-wise gather of neighborhood features. */
    ops::GatherResult gather(const ops::BlockSampleResult &centers,
                             const ops::NeighborResult &neighbors) const;

    /** Block-wise 3-NN feature interpolation from sampled points. */
    ops::InterpolateResult
    interpolate(const ops::BlockSampleResult &sampled,
                const std::vector<float> &known_features,
                std::size_t channels, std::size_t k = 3) const;

    /**
     * Run a fixed-weight network with block-wise point operations.
     * The pipeline's pool drives every stage of the network (see
     * nn::BackendOptions::pool); results are bit-identical at any
     * num_threads setting.
     *
     * Intermediates come from the pipeline-owned workspace, so
     * repeated inference reuses warm buffers; only the returned
     * result is freshly allocated. For the fully allocation-free
     * steady state, use the out-parameter overload below.
     */
    nn::InferenceResult infer(const nn::Network &network) const;

    /**
     * Allocation-free steady-state inference: intermediates come
     * from the pipeline-owned workspace and @p out is rewritten
     * reusing its capacity. The second and later calls with the same
     * network perform zero heap allocations when num_threads == 1
     * (pooled dispatch allocates task closures only). Results are
     * bit-identical to infer(network) — warm or cold, at any thread
     * count. Thread-safe via an internal mutex (calls serialize).
     */
    void infer(const nn::Network &network,
               nn::InferenceResult &out) const;

    /**
     * Estimate latency/energy of one inference on the FractalCloud
     * accelerator (cycle-level model, Table II configuration).
     */
    accel::RunReport estimate(const nn::ModelConfig &model) const;

    /**
     * Batched, serving-shaped entry point: partition + sample +
     * group + gather every cloud over one pool sized by
     * options.num_threads. Implemented as a blocking wrapper around
     * serve::AsyncPipeline: each cloud is one FIFO-dispatched
     * request, and the work-conserving scheduler spills intra-cloud
     * block items into idle pool slots when in-flight requests
     * number fewer than threads (e.g. the tail of a batch). Output
     * order matches input order and every per-cloud result is
     * bit-identical to constructing a sequential pipeline for that
     * cloud. For non-blocking submit/poll with deadlines,
     * cancellation, shards, and priority classes, use
     * serve::AsyncPipeline directly.
     *
     * Layering: declared here because batching belongs to the core
     * API surface, but DEFINED in the fc_serve library
     * (serve/run_batch.cc) — the wrapper rides the async serving
     * path, and core never links upward. Link fc_serve to use it.
     */
    static std::vector<BatchResult>
    runBatch(const std::vector<data::PointCloud> &clouds,
             const PipelineOptions &options = {},
             const BatchRequest &request = {});

  private:
    data::PointCloud cloud_;
    PipelineOptions options_;
    std::shared_ptr<core::ThreadPool> pool_;
    part::PartitionResult partition_;

    /** Inference workspace + its guard, shared by copies of the
     *  pipeline (a shared_ptr keeps the pipeline copyable; the mutex
     *  serializes concurrent infer() calls). */
    struct InferState
    {
        std::mutex mutex;
        core::Workspace workspace;
    };
    std::shared_ptr<InferState> infer_state_ =
        std::make_shared<InferState>();
};

} // namespace fc

#endif // FC_CORE_PIPELINE_H
