/**
 * @file
 * The block-parallel execution runtime.
 *
 * The paper's premise is that fractal partitioning turns every point
 * operation into independent per-block work items; this header is
 * where that parallelism actually runs. It provides:
 *
 *   - ThreadPool: a fixed-size pool (no work stealing) shared by the
 *     partitioner, the block-wise ops, and the batched pipeline API.
 *   - TaskGroup: structured fork/join on a pool. Waiting threads help
 *     drain the queue, so tasks may safely submit subtasks (needed by
 *     the recursive partition builders).
 *   - parallelFor / parallelReduce: chunked loops whose chunk
 *     boundaries depend only on (begin, end, grain) — never on the
 *     thread count — so reductions folded in chunk order are
 *     deterministic and results are bit-identical to the sequential
 *     path at any thread count.
 *
 * A null pool (or a pool of one thread) is the exact sequential path:
 * chunks run inline, in order, on the calling thread.
 */

#ifndef FC_CORE_PARALLEL_H
#define FC_CORE_PARALLEL_H

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/workspace.h"

namespace fc::core {

/**
 * Fixed-capacity small-buffer callable: the task slot of the pooled
 * dispatch path.
 *
 * Chunk tasks used to be std::function, whose capture blocks exceed
 * its small-buffer optimization and heap-allocate one closure per
 * chunk — the last allocation on the pooled steady-state path.
 * InlineTask stores callables up to kStorageBytes directly in the
 * slot (every chunk closure the runtime produces fits); oversized or
 * throwing-move callables fall back to a heap box, preserving
 * correctness for arbitrary user tasks.
 *
 * Move-only. A task is invoked at most once; destruction (not
 * invocation) releases the callable.
 */
class InlineTask
{
  public:
    /** Sized for the largest runtime closure (a partition builder's
     *  fork: this + slice bounds + an Aabb cell + a record pointer,
     *  plus the TaskGroup wrapper's bookkeeping). */
    static constexpr std::size_t kStorageBytes = 96;

    InlineTask() = default;

    template <typename Fn,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<Fn>, InlineTask>>>
    explicit InlineTask(Fn &&fn)
    {
        using Decayed = std::decay_t<Fn>;
        if constexpr (sizeof(Decayed) <= kStorageBytes &&
                      alignof(Decayed) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Decayed>) {
            ::new (static_cast<void *>(storage_))
                Decayed(std::forward<Fn>(fn));
            vtable_ = &inlineVTable<Decayed>;
        } else {
            // Heap fallback: the slot holds one owning pointer.
            ::new (static_cast<void *>(storage_)) Decayed *(
                new Decayed(std::forward<Fn>(fn)));
            vtable_ = &heapVTable<Decayed>;
        }
    }

    InlineTask(InlineTask &&other) noexcept { moveFrom(other); }

    InlineTask &
    operator=(InlineTask &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineTask(const InlineTask &) = delete;
    InlineTask &operator=(const InlineTask &) = delete;

    ~InlineTask() { reset(); }

    explicit operator bool() const { return vtable_ != nullptr; }

    void
    operator()()
    {
        vtable_->invoke(storage_);
    }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        /** Move-construct into @p dst from @p src, destroying src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Decayed>
    static constexpr VTable inlineVTable = {
        [](void *p) { (*std::launder(reinterpret_cast<Decayed *>(p)))(); },
        [](void *dst, void *src) {
            Decayed *from = std::launder(reinterpret_cast<Decayed *>(src));
            ::new (dst) Decayed(std::move(*from));
            from->~Decayed();
        },
        [](void *p) {
            std::launder(reinterpret_cast<Decayed *>(p))->~Decayed();
        },
    };

    template <typename Decayed>
    static constexpr VTable heapVTable = {
        [](void *p) {
            (**std::launder(reinterpret_cast<Decayed **>(p)))();
        },
        [](void *dst, void *src) {
            ::new (dst) Decayed *(
                *std::launder(reinterpret_cast<Decayed **>(src)));
        },
        [](void *p) {
            delete *std::launder(reinterpret_cast<Decayed **>(p));
        },
    };

    void
    moveFrom(InlineTask &other) noexcept
    {
        vtable_ = other.vtable_;
        if (vtable_ != nullptr) {
            vtable_->relocate(storage_, other.storage_);
            other.vtable_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (vtable_ != nullptr) {
            vtable_->destroy(storage_);
            vtable_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kStorageBytes];
    const VTable *vtable_ = nullptr;
};

/**
 * Growable ring of InlineTask slots — the fork/join lane's queue.
 *
 * Capacity doubles on overflow and is never returned, so a pool that
 * has seen its peak chunk backlog enqueues and dequeues without
 * touching the heap: the allocation-free steady state of the
 * workspace layer (core/workspace.h) extends to pooled dispatch.
 */
class TaskRing
{
  public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void
    push(InlineTask &&task)
    {
        if (size_ == slots_.size())
            grow();
        slots_[(head_ + size_) & mask_] = std::move(task);
        ++size_;
    }

    InlineTask
    pop()
    {
        InlineTask task = std::move(slots_[head_]);
        head_ = (head_ + 1) & mask_;
        --size_;
        return task;
    }

  private:
    void
    grow()
    {
        const std::size_t capacity =
            std::max<std::size_t>(64, slots_.size() * 2);
        std::vector<InlineTask> next(capacity);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = std::move(slots_[(head_ + i) & mask_]);
        slots_ = std::move(next);
        mask_ = capacity - 1;
        head_ = 0;
    }

    std::vector<InlineTask> slots_; ///< power-of-two capacity
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

/**
 * Fixed-size thread pool with two FIFO lanes:
 *
 *   - the fork/join lane (TaskGroup::run): chunk-sized tasks that a
 *     waiter is allowed to help drain, and
 *   - the detached lane (submitDetached): whole-request tasks with no
 *     joiner, run only by dedicated workers.
 *
 * Workers prefer the fork/join lane — chunks unblock waiters and keep
 * spilled requests low-latency — and a TaskGroup waiter never touches
 * the detached lane, so helping can't nest an unrelated full request
 * (and its latency/deadline) onto a waiter's stack.
 *
 * In fork/join mode the pool owns num_threads - 1 worker threads; the
 * thread that waits on a TaskGroup acts as the final worker
 * (help-join), so a pool of n threads keeps exactly n threads busy
 * and a pool of 1 spawns none.
 *
 * Workers can optionally be pinned to cpus (the @p pin_cpus
 * constructor argument): worker t binds to pin_cpus[t % size] at
 * startup, best-effort (see core/topology.h — a refused affinity
 * call degrades to an unpinned worker, never an error). The caller
 * thread of a fork/join pool is never pinned: only spawned workers
 * are.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads 0 = all hardware threads, n = exactly n.
     * @param standalone  false (fork/join use): spawn num_threads - 1
     *     workers and count the thread that waits on a TaskGroup as
     *     the final worker. true (serving use, see fc::serve): the
     *     pool hosts detached work with no external joining thread,
     *     so it spawns exactly num_threads workers.
     * @param pin_cpus    optional cpu ids to pin spawned workers to
     *     (worker t -> pin_cpus[t % size]); empty = no pinning. The
     *     ShardedExecutor passes each shard a disjoint set so shard
     *     arenas stay in one socket's pages.
     */
    explicit ThreadPool(unsigned num_threads = 0,
                        bool standalone = false,
                        std::vector<int> pin_cpus = {});
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Resolved thread count (>= 1). */
    unsigned numThreads() const { return num_threads_; }

    /** Cpu ids workers were asked to pin to (empty = unpinned). */
    const std::vector<int> &pinnedCpus() const { return pin_cpus_; }

    /**
     * Enqueue a fire-and-forget task at the tail of the detached
     * lane. Unlike TaskGroup::run there is no join: the caller must
     * guarantee every detached task has finished before the pool is
     * destroyed (the serving layer tracks this via its Scheduler).
     *
     * Small callables ride the detached lane's InlineTask ring
     * without touching the heap — with the workspace pools and the
     * outcome slabs of fc::serve this keeps the whole warm
     * submit->poll round trip allocation-free.
     */
    template <typename Fn>
    void
    submitDetached(Fn &&task)
    {
        submitDetachedTask(InlineTask(std::forward<Fn>(task)));
    }

    /** 0 -> hardware concurrency (min 1), n -> n. */
    static unsigned resolveThreadCount(unsigned requested);

  private:
    friend class TaskGroup;

    /** Push one chunk task onto the fork/join lane and wake a
     *  worker. The InlineTask slot keeps the push allocation-free
     *  once the ring has grown to its peak backlog. */
    void enqueueForkJoin(InlineTask task);

    /** Out-of-line body of submitDetached. */
    void submitDetachedTask(InlineTask task);

    void workerLoop();

    unsigned num_threads_;
    std::vector<int> pin_cpus_; ///< empty = unpinned workers
    std::vector<std::thread> workers_;
    TaskRing queue_;    ///< fork/join lane
    TaskRing detached_; ///< detached lane (whole-request tasks)
    std::mutex mutex_;
    std::condition_variable work_cv_;
    bool stop_ = false;
};

/**
 * A set of tasks forked onto a pool and joined together.
 *
 * run() enqueues a task (or runs it inline when the pool is null or
 * single-threaded); wait() drains queued tasks while waiting — nested
 * submission from inside a task therefore cannot deadlock — and
 * rethrows the first exception any task raised.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool *pool);
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /**
     * Fork one task. Small callables ride the pool's inline task
     * slots without touching the heap (see InlineTask); the template
     * also keeps the sequential path free of any std::function
     * materialization.
     */
    template <typename Fn>
    void
    run(Fn &&fn)
    {
        if (pool_ == nullptr) {
            // Sequential path: run now, on this thread, in submission
            // order. Exceptions are recorded and rethrown at wait() so
            // both paths observe identical semantics.
            try {
                fn();
            } catch (...) {
                record(std::current_exception());
            }
            return;
        }
        pending_.fetch_add(1, std::memory_order_acq_rel);
        // The group lives on the waiter's stack and may be destroyed
        // the instant pending_ reaches zero; the final notification
        // must go through a by-value pool pointer, not through
        // `this`.
        pool_->enqueueForkJoin(InlineTask(
            [this, pool = pool_, fn = std::forward<Fn>(fn)]() mutable {
                try {
                    fn();
                } catch (...) {
                    record(std::current_exception());
                }
                finish(pool);
            }));
    }

    /** Join all forked tasks; rethrows the first recorded exception. */
    void wait();

  private:
    void record(std::exception_ptr e);

    /** Decrement pending_ under the pool mutex (so a waiter holding
     *  it cannot miss the final notification) and wake waiters. Last
     *  access to `this`. */
    void finish(ThreadPool *pool);

    ThreadPool *pool_; ///< null = inline execution
    std::atomic<std::size_t> pending_{0};
    std::mutex exception_mutex_;
    std::exception_ptr exception_;
};

namespace detail {

/** Non-owning callable reference: parallelFor hands its body to the
 *  out-of-line chunk dispatcher through one of these, so no
 *  std::function (and no closure allocation) ever materializes on the
 *  pooled path. The referent must outlive the dispatch — parallelFor
 *  keeps it alive on the caller's stack through the join. */
struct ChunkRef
{
    void *ctx;
    void (*call)(void *, std::size_t, std::size_t);
};

} // namespace detail

/** Pooled body of parallelFor (chunks become TaskGroup tasks). */
void parallelForImpl(ThreadPool *pool, std::size_t begin,
                     std::size_t end, std::size_t grain,
                     detail::ChunkRef fn);

/**
 * Chunked parallel loop over [begin, end).
 *
 * The range is cut into fixed chunks of @p grain (the last one
 * shorter); @p fn receives each [chunk_begin, chunk_end). Chunk
 * boundaries are a pure function of the range and grain, so writing
 * per-index or per-chunk slots yields identical memory at any thread
 * count. With a null or single-thread pool the chunks run inline in
 * ascending order — the exact sequential path, which (being a
 * template) also performs zero heap allocations: no std::function is
 * materialized, so the allocation-free steady state of the workspace
 * layer (core/workspace.h) holds through every inline loop.
 */
template <typename Fn>
void
parallelFor(ThreadPool *pool, std::size_t begin, std::size_t end,
            std::size_t grain, Fn &&fn)
{
    if (begin >= end)
        return;
    const std::size_t g = std::max<std::size_t>(1, grain);
    if (pool == nullptr || pool->numThreads() <= 1 ||
        end - begin <= g) {
        for (std::size_t cb = begin; cb < end; cb += g)
            fn(cb, std::min(cb + g, end));
        return;
    }
    parallelForImpl(
        pool, begin, end, g,
        detail::ChunkRef{
            const_cast<void *>(
                static_cast<const void *>(std::addressof(fn))),
            [](void *ctx, std::size_t cb, std::size_t ce) {
                (*static_cast<std::remove_reference_t<Fn> *>(ctx))(cb,
                                                                   ce);
            }});
}

/**
 * Grain (chunk length) targeting roughly @p target_ops scalar
 * operations per chunk for a loop whose every index costs
 * @p ops_per_item operations. A pure function of its arguments —
 * never of the pool or thread count — so loops sized with it keep the
 * bit-identical determinism contract of parallelFor. The network and
 * partition layers use it to pick row/point grains that amortize task
 * overhead for cheap items without starving wide pools on expensive
 * ones.
 */
inline std::size_t
costGrain(std::size_t ops_per_item, std::size_t target_ops = 1 << 15)
{
    return std::max<std::size_t>(
        1, target_ops / std::max<std::size_t>(1, ops_per_item));
}

/**
 * Deterministic chunk-ordered reduction.
 *
 * Computes @p chunk_fn(chunk_begin, chunk_end) -> T per chunk
 * (possibly in parallel), then folds the per-chunk values into
 * @p init strictly in ascending chunk order with
 * @p fold_fn(T &acc, T &&chunk_value). The fold order never depends
 * on the thread count, so even non-commutative merges (e.g. appending
 * per-leaf sample lists) are bit-identical to sequential execution.
 *
 * @p scratch (optional) stages per-chunk values above
 * kReduceInlineChunks: trivially-destructible T draws the staging
 * array from the arena instead of the heap, keeping high-chunk-count
 * reduces (per-leaf block ops, per-center neighbor scans) on the
 * allocation-free warm path. Null, or a non-trivial T, falls back to
 * one heap vector. Chunk boundaries and fold order are unaffected.
 */
/** Pooled parallelReduce stages up to this many per-chunk values on
 *  the caller's stack; larger chunk counts stage in the caller's
 *  arena (when provided) or fall back to one heap vector. Sized so
 *  the hot serving/inference shapes (per-leaf reduces at a few dozen
 *  leaves, extrema scans at kSplitGrain) stay allocation-free warm
 *  even without an arena. */
inline constexpr std::size_t kReduceInlineChunks = 64;

template <typename T, typename ChunkFn, typename FoldFn>
T
parallelReduce(ThreadPool *pool, std::size_t begin, std::size_t end,
               std::size_t grain, T init, ChunkFn chunk_fn,
               FoldFn fold_fn, Arena *scratch = nullptr)
{
    if (begin >= end)
        return init;
    const std::size_t g = std::max<std::size_t>(1, grain);
    if (pool == nullptr || pool->numThreads() <= 1) {
        // Sequential fast path: same chunk boundaries and fold order,
        // but no per-chunk staging at all — the inline loops of the
        // allocation-free steady state never touch the heap.
        for (std::size_t cb = begin; cb < end; cb += g)
            fold_fn(init, chunk_fn(cb, std::min(cb + g, end)));
        return init;
    }
    const std::size_t num_chunks = (end - begin + g - 1) / g;
    const auto reduce_into = [&](T *partial) {
        parallelFor(pool, begin, end, g,
                    [&](std::size_t cb, std::size_t ce) {
                        partial[(cb - begin) / g] = chunk_fn(cb, ce);
                    });
        for (std::size_t c = 0; c < num_chunks; ++c)
            fold_fn(init, std::move(partial[c]));
    };
    if (num_chunks <= kReduceInlineChunks) {
        // Stack staging: the pooled reduce performs zero heap
        // allocations, matching the inline-task dispatch underneath.
        std::array<T, kReduceInlineChunks> partial{};
        reduce_into(partial.data());
        return init;
    }
    T *arena_partial = nullptr;
    if constexpr (std::is_trivially_destructible_v<T>) {
        // Value-construct the staging slots (the fill overload):
        // chunk tasks assign into them, which requires live objects.
        if (scratch != nullptr)
            arena_partial =
                scratch->allocSpan<T>(num_chunks, T{}).data();
    }
    if (arena_partial != nullptr) {
        reduce_into(arena_partial);
    } else {
        std::vector<T> partial(num_chunks);
        reduce_into(partial.data());
    }
    return init;
}

} // namespace fc::core

#endif // FC_CORE_PARALLEL_H
