/**
 * @file
 * The block-parallel execution runtime.
 *
 * The paper's premise is that fractal partitioning turns every point
 * operation into independent per-block work items; this header is
 * where that parallelism actually runs. It provides:
 *
 *   - ThreadPool: a fixed-size pool (no work stealing) shared by the
 *     partitioner, the block-wise ops, and the batched pipeline API.
 *   - TaskGroup: structured fork/join on a pool. Waiting threads help
 *     drain the queue, so tasks may safely submit subtasks (needed by
 *     the recursive partition builders).
 *   - parallelFor / parallelReduce: chunked loops whose chunk
 *     boundaries depend only on (begin, end, grain) — never on the
 *     thread count — so reductions folded in chunk order are
 *     deterministic and results are bit-identical to the sequential
 *     path at any thread count.
 *
 * A null pool (or a pool of one thread) is the exact sequential path:
 * chunks run inline, in order, on the calling thread.
 */

#ifndef FC_CORE_PARALLEL_H
#define FC_CORE_PARALLEL_H

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fc::core {

/**
 * Fixed-size thread pool with two FIFO lanes:
 *
 *   - the fork/join lane (TaskGroup::run): chunk-sized tasks that a
 *     waiter is allowed to help drain, and
 *   - the detached lane (submitDetached): whole-request tasks with no
 *     joiner, run only by dedicated workers.
 *
 * Workers prefer the fork/join lane — chunks unblock waiters and keep
 * spilled requests low-latency — and a TaskGroup waiter never touches
 * the detached lane, so helping can't nest an unrelated full request
 * (and its latency/deadline) onto a waiter's stack.
 *
 * In fork/join mode the pool owns num_threads - 1 worker threads; the
 * thread that waits on a TaskGroup acts as the final worker
 * (help-join), so a pool of n threads keeps exactly n threads busy
 * and a pool of 1 spawns none.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads 0 = all hardware threads, n = exactly n.
     * @param standalone  false (fork/join use): spawn num_threads - 1
     *     workers and count the thread that waits on a TaskGroup as
     *     the final worker. true (serving use, see fc::serve): the
     *     pool hosts detached work with no external joining thread,
     *     so it spawns exactly num_threads workers.
     */
    explicit ThreadPool(unsigned num_threads = 0,
                        bool standalone = false);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Resolved thread count (>= 1). */
    unsigned numThreads() const { return num_threads_; }

    /**
     * Enqueue a fire-and-forget task at the tail of the detached
     * lane. Unlike TaskGroup::run there is no join: the caller must
     * guarantee every detached task has finished before the pool is
     * destroyed (the serving layer tracks this via its Scheduler).
     */
    void submitDetached(std::function<void()> task);

    /** 0 -> hardware concurrency (min 1), n -> n. */
    static unsigned resolveThreadCount(unsigned requested);

  private:
    friend class TaskGroup;

    void workerLoop();

    unsigned num_threads_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;    ///< fork/join lane
    std::deque<std::function<void()>> detached_; ///< detached lane
    std::mutex mutex_;
    std::condition_variable work_cv_;
    bool stop_ = false;
};

/**
 * A set of tasks forked onto a pool and joined together.
 *
 * run() enqueues a task (or runs it inline when the pool is null or
 * single-threaded); wait() drains queued tasks while waiting — nested
 * submission from inside a task therefore cannot deadlock — and
 * rethrows the first exception any task raised.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool *pool);
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Fork one task. The callable must stay valid until wait(). */
    void run(std::function<void()> fn);

    /** Join all forked tasks; rethrows the first recorded exception. */
    void wait();

  private:
    void record(std::exception_ptr e);

    ThreadPool *pool_; ///< null = inline execution
    std::atomic<std::size_t> pending_{0};
    std::mutex exception_mutex_;
    std::exception_ptr exception_;
};

/** Pooled body of parallelFor (chunks become TaskGroup tasks). */
void parallelForImpl(ThreadPool *pool, std::size_t begin,
                     std::size_t end, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)> &fn);

/**
 * Chunked parallel loop over [begin, end).
 *
 * The range is cut into fixed chunks of @p grain (the last one
 * shorter); @p fn receives each [chunk_begin, chunk_end). Chunk
 * boundaries are a pure function of the range and grain, so writing
 * per-index or per-chunk slots yields identical memory at any thread
 * count. With a null or single-thread pool the chunks run inline in
 * ascending order — the exact sequential path, which (being a
 * template) also performs zero heap allocations: no std::function is
 * materialized, so the allocation-free steady state of the workspace
 * layer (core/workspace.h) holds through every inline loop.
 */
template <typename Fn>
void
parallelFor(ThreadPool *pool, std::size_t begin, std::size_t end,
            std::size_t grain, Fn &&fn)
{
    if (begin >= end)
        return;
    const std::size_t g = std::max<std::size_t>(1, grain);
    if (pool == nullptr || pool->numThreads() <= 1 ||
        end - begin <= g) {
        for (std::size_t cb = begin; cb < end; cb += g)
            fn(cb, std::min(cb + g, end));
        return;
    }
    parallelForImpl(pool, begin, end, g, fn);
}

/**
 * Grain (chunk length) targeting roughly @p target_ops scalar
 * operations per chunk for a loop whose every index costs
 * @p ops_per_item operations. A pure function of its arguments —
 * never of the pool or thread count — so loops sized with it keep the
 * bit-identical determinism contract of parallelFor. The network and
 * partition layers use it to pick row/point grains that amortize task
 * overhead for cheap items without starving wide pools on expensive
 * ones.
 */
inline std::size_t
costGrain(std::size_t ops_per_item, std::size_t target_ops = 1 << 15)
{
    return std::max<std::size_t>(
        1, target_ops / std::max<std::size_t>(1, ops_per_item));
}

/**
 * Deterministic chunk-ordered reduction.
 *
 * Computes @p chunk_fn(chunk_begin, chunk_end) -> T per chunk
 * (possibly in parallel), then folds the per-chunk values into
 * @p init strictly in ascending chunk order with
 * @p fold_fn(T &acc, T &&chunk_value). The fold order never depends
 * on the thread count, so even non-commutative merges (e.g. appending
 * per-leaf sample lists) are bit-identical to sequential execution.
 */
template <typename T, typename ChunkFn, typename FoldFn>
T
parallelReduce(ThreadPool *pool, std::size_t begin, std::size_t end,
               std::size_t grain, T init, ChunkFn chunk_fn,
               FoldFn fold_fn)
{
    if (begin >= end)
        return init;
    const std::size_t g = std::max<std::size_t>(1, grain);
    if (pool == nullptr || pool->numThreads() <= 1) {
        // Sequential fast path: same chunk boundaries and fold order,
        // but no per-chunk staging vector — the inline loops of the
        // allocation-free steady state never touch the heap.
        for (std::size_t cb = begin; cb < end; cb += g)
            fold_fn(init, chunk_fn(cb, std::min(cb + g, end)));
        return init;
    }
    const std::size_t num_chunks = (end - begin + g - 1) / g;
    std::vector<T> partial(num_chunks);
    parallelFor(pool, begin, end, g,
                [&](std::size_t cb, std::size_t ce) {
                    partial[(cb - begin) / g] = chunk_fn(cb, ce);
                });
    for (std::size_t c = 0; c < num_chunks; ++c)
        fold_fn(init, std::move(partial[c]));
    return init;
}

} // namespace fc::core

#endif // FC_CORE_PARALLEL_H
