#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.h"

namespace fc::core::metrics {

void
setSampling(bool enabled)
{
    detail::g_sampling.store(enabled, std::memory_order_relaxed);
}

namespace detail {

unsigned
threadStripe()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned stripe =
        next.fetch_add(1, std::memory_order_relaxed);
    return stripe;
}

} // namespace detail

std::uint64_t
Histogram::bucketUpperBound(unsigned index)
{
    fc_assert(index < kBuckets, "histogram bucket %u out of range",
              index);
    if (index < (1u << kSubBits))
        return index; // exact small-value buckets
    const unsigned rel = index - (1u << kSubBits);
    const unsigned k = (rel >> kSubBits) + kSubBits;
    const unsigned sub = rel & ((1u << kSubBits) - 1);
    if (k >= 63 && sub == (1u << kSubBits) - 1)
        return std::numeric_limits<std::uint64_t>::max();
    // Bucket covers [2^k + sub*2^(k-kSubBits), next boundary); the
    // upper bound is one below the next boundary.
    const std::uint64_t base = 1ull << k;
    const std::uint64_t step = 1ull << (k - kSubBits);
    return base + step * (sub + 1) - 1;
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &bucket : buckets_)
        total += bucket.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Histogram::percentile(double q) const
{
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t total = count();
    if (total == 0)
        return 0;
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(total))));
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        seen += buckets_[i].load(std::memory_order_relaxed);
        if (seen >= rank)
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kBuckets - 1); // unreachable
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

namespace {

/** Find-or-create in a NameMap; @p mutex held by the caller. */
template <typename T, typename Map>
T &
findOrCreate(Map &map, std::string_view name)
{
    const auto it = map.find(name);
    if (it != map.end())
        return *it->second;
    return *map.emplace(std::string(name), std::make_unique<T>())
                .first->second;
}

/** A name must hold exactly one instrument kind. */
template <typename Map>
void
assertUnused(const Map &map, std::string_view name, const char *kind)
{
    fc_assert(map.find(name) == map.end(),
              "metric '%.*s' already registered as a %s",
              static_cast<int>(name.size()), name.data(), kind);
}

void
appendJsonKey(std::string &out, const std::string &name, bool &first)
{
    if (!first)
        out += ',';
    first = false;
    out += '"';
    // Instrument names are library-chosen identifiers (letters,
    // digits, ., _, {}=,) — nothing needing JSON escaping beyond the
    // quote/backslash check kept here for safety.
    for (const char c : name) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += "\":";
}

} // namespace

Counter &
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    assertUnused(gauges_, name, "gauge");
    assertUnused(histograms_, name, "histogram");
    return findOrCreate<Counter>(counters_, name);
}

Gauge &
Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    assertUnused(counters_, name, "counter");
    assertUnused(histograms_, name, "histogram");
    return findOrCreate<Gauge>(gauges_, name);
}

Histogram &
Registry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    assertUnused(counters_, name, "counter");
    assertUnused(gauges_, name, "gauge");
    return findOrCreate<Histogram>(histograms_, name);
}

void
Registry::renderText(std::string &out) const
{
    // One pass per kind keeps each kind's lines sorted by name; the
    // kinds themselves are grouped counter -> gauge -> histogram,
    // which is part of the stable format contract.
    std::lock_guard<std::mutex> lock(mutex_);
    char buf[192];
    for (const auto &[name, counter] : counters_) {
        std::snprintf(buf, sizeof buf, " counter %llu\n",
                      static_cast<unsigned long long>(counter->value()));
        out += name;
        out += buf;
    }
    for (const auto &[name, gauge] : gauges_) {
        std::snprintf(buf, sizeof buf, " gauge %lld\n",
                      static_cast<long long>(gauge->value()));
        out += name;
        out += buf;
    }
    for (const auto &[name, hist] : histograms_) {
        std::snprintf(
            buf, sizeof buf,
            " histogram count=%llu sum=%llu p50=%llu p95=%llu "
            "p99=%llu max=%llu\n",
            static_cast<unsigned long long>(hist->count()),
            static_cast<unsigned long long>(hist->sum()),
            static_cast<unsigned long long>(hist->percentile(0.50)),
            static_cast<unsigned long long>(hist->percentile(0.95)),
            static_cast<unsigned long long>(hist->percentile(0.99)),
            static_cast<unsigned long long>(hist->max()));
        out += name;
        out += buf;
    }
}

void
Registry::renderJson(std::string &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    char buf[192];
    out += "{\"counters\":{";
    bool first = true;
    for (const auto &[name, counter] : counters_) {
        appendJsonKey(out, name, first);
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(counter->value()));
        out += buf;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, gauge] : gauges_) {
        appendJsonKey(out, name, first);
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(gauge->value()));
        out += buf;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, hist] : histograms_) {
        appendJsonKey(out, name, first);
        std::snprintf(
            buf, sizeof buf,
            "{\"count\":%llu,\"sum\":%llu,\"p50\":%llu,\"p95\":%llu,"
            "\"p99\":%llu,\"max\":%llu}",
            static_cast<unsigned long long>(hist->count()),
            static_cast<unsigned long long>(hist->sum()),
            static_cast<unsigned long long>(hist->percentile(0.50)),
            static_cast<unsigned long long>(hist->percentile(0.95)),
            static_cast<unsigned long long>(hist->percentile(0.99)),
            static_cast<unsigned long long>(hist->max()));
        out += buf;
    }
    out += "}}";
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &kv : counters_)
        kv.second->reset();
    for (const auto &kv : gauges_)
        kv.second->reset();
    for (const auto &kv : histograms_)
        kv.second->reset();
}

} // namespace fc::core::metrics
