/**
 * @file
 * Host CPU topology and worker pinning — the NUMA half of the
 * shard-local memory story.
 *
 * The paper keeps each block's working set on the chip that computes
 * it; the host-side analog is keeping each shard's pages on the
 * socket whose workers touch them. This module supplies the three
 * ingredients:
 *
 *   - detectCpuTopology(): the machine's NUMA nodes as cpu-id lists,
 *     read from /sys/devices/system/node (Linux). Hosts without that
 *     tree (other platforms, restricted containers) report one
 *     synthetic node covering every hardware thread — pinning then
 *     degrades to a round-robin spread, which still gives each shard
 *     a disjoint, stable cpu set.
 *   - shardCpuAssignment(): a deterministic carve-up of the topology
 *     into per-shard cpu lists. Shard s prefers node s % nodes, so on
 *     a two-socket host shards alternate sockets and a shard's
 *     workspace arenas fault into its own socket's pages; cpus are
 *     disjoint across shards until the machine is oversubscribed,
 *     after which assignment wraps (documented, deterministic).
 *   - pinCurrentThreadTo(): best-effort pthread_setaffinity_np.
 *     Failure (EPERM in a restricted runner, non-Linux hosts) is
 *     reported, never fatal: an unpinned worker computes identical
 *     results, it just loses locality.
 *
 * FC_NO_PIN=1 in the environment disables pinning globally
 * (pinningDisabled()); CI runs one serve leg with it set so the
 * unpinned path stays green on runners that refuse affinity calls.
 * Pinning never affects results — every operation is deterministic
 * with respect to its pool — only page placement and tail latency.
 */

#ifndef FC_CORE_TOPOLOGY_H
#define FC_CORE_TOPOLOGY_H

#include <cstddef>
#include <vector>

namespace fc::core {

/** The host's cpus grouped by NUMA node (>= 1 node when detected). */
struct CpuTopology
{
    /** nodes[n] = cpu ids of NUMA node n, ascending. */
    std::vector<std::vector<int>> nodes;

    std::size_t
    cpuCount() const
    {
        std::size_t total = 0;
        for (const std::vector<int> &node : nodes)
            total += node.size();
        return total;
    }
};

/**
 * Read the NUMA layout from /sys/devices/system/node/node<n>/cpulist.
 * Fallback (no /sys tree, non-Linux): one node listing cpu ids
 * 0 .. hardware_concurrency-1. Never returns an empty topology.
 */
CpuTopology detectCpuTopology();

/** True when FC_NO_PIN is set to anything but "" or "0": the global
 *  escape hatch for hosts where affinity hurts or is refused. */
bool pinningDisabled();

/**
 * Pin the calling thread to @p cpu. Best-effort: returns false (and
 * changes nothing) on non-Linux builds, negative cpu ids, or a
 * refused sched_setaffinity (e.g. a cpuset-restricted container).
 */
bool pinCurrentThreadTo(int cpu);

/**
 * Deterministic per-shard cpu lists: shard s draws
 * @p threads_per_shard cpus starting from node s % nodes, spilling
 * into the next node when its preferred one is exhausted. Lists are
 * disjoint until every cpu is assigned once; beyond that the
 * assignment wraps over all cpus in node order (oversubscribed hosts
 * still get stable, evenly spread sets).
 */
std::vector<std::vector<int>>
shardCpuAssignment(const CpuTopology &topology, unsigned num_shards,
                   unsigned threads_per_shard);

} // namespace fc::core

#endif // FC_CORE_TOPOLOGY_H
