#include "core/simd.h"

#include <atomic>
#include <cstdlib>

#include "common/fp16.h"
#include "common/logging.h"

namespace fc::core::simd {

namespace {

/**
 * Scalar reference kernels. Each body is the literal loop it replaced
 * in ops/fps.cc, ops/neighbor.cc, or nn/mlp.cc — same expressions,
 * same evaluation order — so forcing this level reproduces the
 * pre-SIMD library bit for bit.
 */

inline PointIdx
candidateIdx(const PointIdx *order, std::uint32_t identity_base,
             std::uint32_t i)
{
    return order != nullptr ? order[i] : identity_base + i;
}

FpsPartial
fpsUpdateScalar(const SoaView &pts, const PointIdx *order,
                std::uint32_t identity_base, const Vec3 &query,
                float *min_dist, const std::uint8_t *sampled,
                std::uint32_t begin, std::uint32_t end)
{
    FpsPartial p;
    for (std::uint32_t i = begin; i < end; ++i) {
        if (sampled[i]) {
            ++p.sampled;
            continue;
        }
        const PointIdx idx = candidateIdx(order, identity_base, i);
        const float dx = query.x - pts.xs[idx];
        const float dy = query.y - pts.ys[idx];
        const float dz = query.z - pts.zs[idx];
        const float d = dx * dx + dy * dy + dz * dz;
        if (d < min_dist[i])
            min_dist[i] = d;
        if (min_dist[i] > p.best) {
            p.best = min_dist[i];
            p.pos = i;
        }
    }
    return p;
}

void
distance2RangeScalar(const SoaView &pts, const PointIdx *order,
                     std::uint32_t identity_base, const Vec3 &query,
                     std::uint32_t begin, std::uint32_t end, float *out)
{
    for (std::uint32_t i = begin; i < end; ++i) {
        const PointIdx idx = candidateIdx(order, identity_base, i);
        const float dx = query.x - pts.xs[idx];
        const float dy = query.y - pts.ys[idx];
        const float dz = query.z - pts.zs[idx];
        out[i - begin] = dx * dx + dy * dy + dz * dz;
    }
}

float
dotAccScalar(float init, const float *a, const float *b, std::size_t n)
{
    float acc = init;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

float
dotAccFp16Scalar(float init, const std::uint16_t *a,
                 const std::uint16_t *b, std::size_t n)
{
    float acc = init;
    for (std::size_t i = 0; i < n; ++i)
        acc += fp16BitsToFp32(a[i]) * fp16BitsToFp32(b[i]);
    return acc;
}

void
axpyScalar(float a, const float *x, float *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

void
fp16RoundScalar(float *values, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        values[i] = fp16Round(values[i]);
}

void
fp32ToFp16Scalar(const float *src, std::uint16_t *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = fp32ToFp16Bits(src[i]);
}

void
fp16ToFp32Scalar(const std::uint16_t *src, float *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = fp16BitsToFp32(src[i]);
}

constexpr detail::Kernels kScalarKernels = {
    &fpsUpdateScalar,  &distance2RangeScalar, &dotAccScalar,
    &dotAccFp16Scalar, &axpyScalar,           &fp16RoundScalar,
    &fp32ToFp16Scalar, &fp16ToFp32Scalar,
};

const detail::Kernels *
tableFor(Level level)
{
    if (level == Level::Avx2) {
        const detail::Kernels *avx2 = detail::avx2Kernels();
        if (avx2 != nullptr)
            return avx2;
    }
    return &kScalarKernels;
}

/** The dispatch slot, resolved once from cpuid + FC_FORCE_SCALAR. */
std::atomic<const detail::Kernels *> &
activeSlot()
{
    static std::atomic<const detail::Kernels *> slot{tableFor(
        resolveLevel(avx2Available(), std::getenv("FC_FORCE_SCALAR")))};
    return slot;
}

} // namespace

bool
avx2Available()
{
    return detail::avx2Kernels() != nullptr;
}

Level
resolveLevel(bool avx2_available, const char *force_scalar_env)
{
    if (force_scalar_env != nullptr && force_scalar_env[0] != '\0' &&
        !(force_scalar_env[0] == '0' && force_scalar_env[1] == '\0'))
        return Level::Scalar;
    return avx2_available ? Level::Avx2 : Level::Scalar;
}

Level
activeLevel()
{
    return activeSlot().load(std::memory_order_relaxed) ==
                   &kScalarKernels
               ? Level::Scalar
               : Level::Avx2;
}

bool
setActiveLevel(Level level)
{
    const detail::Kernels *table = tableFor(level);
    activeSlot().store(table, std::memory_order_relaxed);
    return (table == &kScalarKernels) == (level == Level::Scalar);
}

const char *
levelName(Level level)
{
    return level == Level::Avx2 ? "avx2" : "scalar";
}

namespace detail {

const Kernels &
active()
{
    return *activeSlot().load(std::memory_order_relaxed);
}

} // namespace detail

FpsPartial
fpsUpdate(const SoaView &pts, const PointIdx *order,
          std::uint32_t identity_base, const Vec3 &query,
          float *min_dist, const std::uint8_t *sampled,
          std::uint32_t begin, std::uint32_t end)
{
    return detail::active().fps_update(pts, order, identity_base, query,
                                       min_dist, sampled, begin, end);
}

void
distance2Range(const SoaView &pts, const PointIdx *order,
               std::uint32_t identity_base, const Vec3 &query,
               std::uint32_t begin, std::uint32_t end, float *out)
{
    detail::active().distance2_range(pts, order, identity_base, query,
                                     begin, end, out);
}

float
dotAcc(float init, const float *a, const float *b, std::size_t n)
{
    return detail::active().dot_acc(init, a, b, n);
}

float
dotAccFp16(float init, const std::uint16_t *a, const std::uint16_t *b,
           std::size_t n)
{
    return detail::active().dot_acc_fp16(init, a, b, n);
}

void
axpy(float a, const float *x, float *y, std::size_t n)
{
    detail::active().axpy(a, x, y, n);
}

void
fp16RoundBuffer(float *values, std::size_t n)
{
    detail::active().fp16_round(values, n);
}

void
fp32ToFp16Buffer(const float *src, std::uint16_t *dst, std::size_t n)
{
    detail::active().fp32_to_fp16(src, dst, n);
}

void
fp16ToFp32Buffer(const std::uint16_t *src, float *dst, std::size_t n)
{
    detail::active().fp16_to_fp32(src, dst, n);
}

} // namespace fc::core::simd
