/**
 * @file
 * Runtime-dispatched vector kernels for the hot inner loops.
 *
 * The paper's speedup comes from wide PE arrays crunching distance and
 * feature math; on a CPU the equivalent is explicit vectorization of
 * the same three inner loops (the Fig. 4 bottleneck trio): the FPS
 * min-distance update, the ball-query/KNN distance screens, and the
 * per-row MLP inner products. This header exposes exactly those
 * primitives, with two implementations behind one function-pointer
 * table:
 *
 *   - Scalar: a reference path whose arithmetic is literally the loop
 *     it replaced — bit-identical to the pre-SIMD code, element order
 *     and all. This is the determinism anchor every test compares
 *     against.
 *   - Avx2: AVX2+FMA+F16C kernels compiled in a separate translation
 *     unit (simd_avx2.cc) with per-file -mavx2 flags, selected at
 *     runtime via cpuid so the binary still runs on older x86-64.
 *
 * Dispatch is decided once, on first use: cpuid gates Avx2, and the
 * FC_FORCE_SCALAR environment variable (any non-empty value except
 * "0") forces the scalar path. Tests and benches may also override
 * programmatically with setActiveLevel().
 *
 * Accuracy contract (asserted by tests/test_simd.cc):
 *
 *   - fpsUpdate, distance2Range, axpy: the Avx2 path is bit-identical
 *     to Scalar. The distance kernels deliberately avoid FMA and keep
 *     the scalar evaluation order ((dx*dx + dy*dy) + dz*dz), min/max
 *     and argmax semantics match the scalar comparisons including NaN
 *     behaviour, and axpy is elementwise mul+add.
 *   - fp16RoundBuffer / fp32ToFp16Buffer / fp16ToFp32Buffer: bit-
 *     identical to the software converters in common/fp16.h for every
 *     non-NaN input; NaN payloads may differ (F16C propagates payload
 *     bits, the software path canonicalizes to 0x200) while staying
 *     NaN.
 *   - dotAcc / dotAccFp16: fp32 accumulation in a fixed two-register
 *     FMA scheme. Association differs from the scalar running sum, so
 *     results are ULP-bounded, not bit-equal: the error is at most
 *     ~(n/8 + 8) float ULP of sum_i |a_i * b_i|, and after binary16
 *     output rounding (how every MLP activation is stored) scalar and
 *     Avx2 agree to <= 1 fp16 ULP. The two dot variants share one
 *     accumulation scheme per level, so fp32-storage and fp16-storage
 *     MLPs produce bit-identical activations when fed equal values.
 *
 * Threading: kernels are pure functions over caller-owned memory and
 * may run concurrently on disjoint ranges — they are called from
 * inside parallelFor/parallelReduce chunks. setActiveLevel() is for
 * test/bench setup only, not for racing against in-flight kernels.
 */

#ifndef FC_CORE_SIMD_H
#define FC_CORE_SIMD_H

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace fc::core::simd {

/** Implementation tiers, in dispatch-preference order. */
enum class Level : int
{
    Scalar = 0,
    Avx2 = 1,
};

/** True when the CPU (and the build) support the Avx2 kernels. */
bool avx2Available();

/**
 * The level every kernel currently dispatches to. Resolved once on
 * first use: Avx2 when available unless FC_FORCE_SCALAR is set.
 */
Level activeLevel();

/**
 * Override the dispatch level (tests/benches). Requesting Avx2 on a
 * machine without it keeps Scalar and returns false.
 */
bool setActiveLevel(Level level);

/** Human-readable level name ("scalar" / "avx2"). */
const char *levelName(Level level);

/**
 * Pure resolution rule behind activeLevel(), exposed for tests:
 * @p force_scalar_env is the raw FC_FORCE_SCALAR value (null = unset;
 * set and not "0" forces Scalar).
 */
Level resolveLevel(bool avx2_available, const char *force_scalar_env);

/**
 * Structure-of-arrays view of point coordinates (data::PointCloud::
 * soa()). Non-owning; pointers must stay valid for the kernel call.
 */
struct SoaView
{
    const float *xs = nullptr;
    const float *ys = nullptr;
    const float *zs = nullptr;
};

/**
 * Result of one fpsUpdate sweep over a chunk of local candidates.
 * `best`/`pos` carry the running-argmax state of the serial FPS loop
 * (strictly-greater updates, so `pos` is the earliest maximal local
 * index); `sampled` counts candidates skipped because their sampled
 * flag was set — the caller derives visited/computed/skipped stats
 * from it, keeping the kernel free of policy.
 */
struct FpsPartial
{
    float best = -1.0f;
    std::uint32_t pos = 0;
    std::uint32_t sampled = 0;
};

/**
 * Candidate addressing shared by fpsUpdate and distance2Range: local
 * position i in [begin, end) names point
 *
 *     order != nullptr ? order[i] : identity_base + i
 *
 * of @p pts. FPS callers pass their view's order pointer pre-offset
 * (order.data() + view_begin) so local positions index min_dist/
 * sampled directly; identity-view callers pass order = nullptr and
 * the view offset as @p identity_base.
 */

/**
 * One fused FPS distance-update sweep: for every unsampled local
 * candidate i in [begin, end), compute the squared distance from
 * @p query, lower min_dist[i] with it, and track the running argmax
 * of the updated min_dist — the body of the paper's FPS iteration.
 * Scalar-loop semantics exactly (see file header); min_dist is
 * updated in place, sampled is read-only.
 */
FpsPartial fpsUpdate(const SoaView &pts, const PointIdx *order,
                     std::uint32_t identity_base, const Vec3 &query,
                     float *min_dist, const std::uint8_t *sampled,
                     std::uint32_t begin, std::uint32_t end);

/**
 * Squared distances from @p query to the local candidates
 * [begin, end), written to out[i - begin]. The distance screen of
 * ball query and KNN: callers scan the tile with their own
 * radius/top-k logic.
 */
void distance2Range(const SoaView &pts, const PointIdx *order,
                    std::uint32_t identity_base, const Vec3 &query,
                    std::uint32_t begin, std::uint32_t end, float *out);

/**
 * init + sum_i a[i] * b[i] with fp32 accumulation — one MLP output
 * neuron with @p init as its bias. Scalar: the exact running sum of
 * the historical LinearRelu row loop. Avx2: FMA partial sums
 * (ULP-bounded, see file header).
 */
float dotAcc(float init, const float *a, const float *b, std::size_t n);

/**
 * dotAcc over binary16-stored operands: lanes promote to fp32 and
 * accumulate in fp32, mirroring the accelerator's fp16 MACs. Uses the
 * same per-level accumulation scheme as dotAcc, so equal operand
 * values give bit-identical sums.
 */
float dotAccFp16(float init, const std::uint16_t *a,
                 const std::uint16_t *b, std::size_t n);

/** y[i] += a * x[i], elementwise (bit-identical across levels). */
void axpy(float a, const float *x, float *y, std::size_t n);

/** Round @p n floats through binary16 in place (Tensor::quantizeFp16
 *  and the LinearRelu activation store). */
void fp16RoundBuffer(float *values, std::size_t n);

/** Convert @p n floats to binary16 bits (round-to-nearest-even). */
void fp32ToFp16Buffer(const float *src, std::uint16_t *dst,
                      std::size_t n);

/** Widen @p n binary16 values to float (exact). */
void fp16ToFp32Buffer(const std::uint16_t *src, float *dst,
                      std::size_t n);

namespace detail {

/** Per-level kernel table; one instance per Level. */
struct Kernels
{
    FpsPartial (*fps_update)(const SoaView &, const PointIdx *,
                             std::uint32_t, const Vec3 &, float *,
                             const std::uint8_t *, std::uint32_t,
                             std::uint32_t);
    void (*distance2_range)(const SoaView &, const PointIdx *,
                            std::uint32_t, const Vec3 &, std::uint32_t,
                            std::uint32_t, float *);
    float (*dot_acc)(float, const float *, const float *, std::size_t);
    float (*dot_acc_fp16)(float, const std::uint16_t *,
                          const std::uint16_t *, std::size_t);
    void (*axpy)(float, const float *, float *, std::size_t);
    void (*fp16_round)(float *, std::size_t);
    void (*fp32_to_fp16)(const float *, std::uint16_t *, std::size_t);
    void (*fp16_to_fp32)(const std::uint16_t *, float *, std::size_t);
};

/** The active table (atomic pointer swap under setActiveLevel). */
const Kernels &active();

/** Avx2 table, or null when the build/CPU cannot run it. Defined in
 *  simd_avx2.cc (the only TU compiled with -mavx2 -mfma -mf16c). */
const Kernels *avx2Kernels();

} // namespace detail

} // namespace fc::core::simd

#endif // FC_CORE_SIMD_H
