#include "core/sharded_executor.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "core/metrics.h"
#include "core/topology.h"

namespace fc::core {

std::uint64_t
ShardMap::mix(std::uint64_t x)
{
    // splitmix64 finalizer: cheap, well-distributed, and fixed for
    // all time — placement must never drift between builds.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

ShardMap::ShardMap(unsigned num_shards) : num_shards_(num_shards)
{
    fc_assert(num_shards_ >= 1, "shard map needs at least one shard");
    if (num_shards_ == 1)
        return; // every key maps to shard 0; no ring needed
    ring_.reserve(static_cast<std::size_t>(num_shards_) * kReplicas);
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
        for (std::uint32_t r = 0; r < kReplicas; ++r) {
            // Ring points are a function of (shard, replica) only, so
            // shard s's points are identical at any shard count —
            // the consistency property.
            const std::uint64_t h =
                mix((static_cast<std::uint64_t>(s) << 32) | r);
            ring_.push_back(Point{h, s});
        }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const Point &a, const Point &b) {
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.shard < b.shard;
              });
}

unsigned
ShardMap::shardFor(std::uint64_t key) const
{
    if (num_shards_ == 1)
        return 0;
    const std::uint64_t h = mix(key);
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Point &p, std::uint64_t value) {
            return p.hash < value;
        });
    return it == ring_.end() ? ring_.front().shard : it->shard;
}

ShardedExecutor::ShardedExecutor(unsigned num_shards,
                                 unsigned threads_per_shard,
                                 bool standalone, bool pin_workers)
    : map_(num_shards)
{
    fc_assert(num_shards >= 1,
              "sharded executor needs at least one shard");

    // NUMA-aware pinning: carve the detected topology into disjoint
    // per-shard cpu sets (shard s prefers node s % nodes) so each
    // shard's workers — and therefore its arenas and workspace pages
    // — stay on one socket. FC_NO_PIN=1 is the runtime escape hatch
    // for hosts where affinity is refused or harmful.
    std::vector<std::vector<int>> cpu_sets;
    pinned_ = pin_workers && !pinningDisabled();
    if (pinned_) {
        const CpuTopology topology = detectCpuTopology();
        if (topology.cpuCount() == 0)
            pinned_ = false;
        else
            cpu_sets = shardCpuAssignment(
                topology, num_shards,
                ThreadPool::resolveThreadCount(threads_per_shard));
    }

    shards_.reserve(num_shards);
    for (unsigned s = 0; s < num_shards; ++s)
        shards_.push_back(std::make_unique<ThreadPool>(
            threads_per_shard, standalone,
            pinned_ ? std::move(cpu_sets[s]) : std::vector<int>{}));
    task_counts_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(num_shards);
    for (unsigned s = 0; s < num_shards; ++s)
        task_counts_[s].store(0, std::memory_order_relaxed);
}

void
ShardedExecutor::noteSubmitted(unsigned shard)
{
    fc_assert(shard < shards_.size(), "submit on unknown shard %u",
              shard);
    task_counts_[shard].fetch_add(1, std::memory_order_relaxed);
    if (!task_counters_.empty())
        task_counters_[shard]->add();
}

std::uint64_t
ShardedExecutor::tasksSubmitted(unsigned shard) const
{
    fc_assert(shard < shards_.size(),
              "tasksSubmitted on unknown shard %u", shard);
    return task_counts_[shard].load(std::memory_order_relaxed);
}

void
ShardedExecutor::attachMetrics(metrics::Registry &registry)
{
    fc_assert(task_counters_.empty(),
              "attachMetrics called twice on one executor");
    task_counters_.reserve(shards_.size());
    for (unsigned s = 0; s < shards_.size(); ++s)
        task_counters_.push_back(&registry.counter(
            "core.executor.tasks{shard=" + std::to_string(s) + "}"));
}

} // namespace fc::core
