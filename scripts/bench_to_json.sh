#!/usr/bin/env bash
# Fold perf-smoke bench CSVs into one machine-readable JSON artifact.
#
# Usage: bench_to_json.sh <out.json> <csv-file>...
#
# Produces the perf-trajectory document uploaded per CI matrix leg
# (BENCH_<compiler>.json): one object per bench keyed by the CSV's
# basename, each carrying the header row as "columns" and every data
# row as an array of strings. Values stay strings deliberately —
# bench tables mix numbers, labels, and ratios, and the trajectory
# tooling downstream decides what to parse. Pure bash+awk (no jq):
# CI runners get nothing beyond the baked-in toolchain.
#
#   {
#     "schema": 1,
#     "benches": {
#       "bench_serve_latency": {
#         "columns": ["path", "p50 ms", ...],
#         "rows": [["serve-warm", "1.23", ...], ...]
#       },
#       ...
#     }
#   }
#
# Fails (non-zero) when any named CSV is missing or empty, so a
# crashed bench binary cannot silently produce a hollow artifact.
set -euo pipefail

if [ "$#" -lt 2 ]; then
    echo "usage: $0 <out.json> <csv-file>..." >&2
    exit 2
fi

out="$1"
shift

for csv in "$@"; do
    if [ ! -s "$csv" ]; then
        echo "FAIL: $csv is missing or empty" >&2
        exit 1
    fi
done

{
    printf '{"schema":1,"benches":{'
    first_bench=1
    for csv in "$@"; do
        name="$(basename "$csv" .csv)"
        if [ "$first_bench" -eq 0 ]; then
            printf ','
        fi
        first_bench=0
        printf '"%s":' "$name"
        awk -F',' '
        # JSON-escape one CSV cell (backslash, quote, control chars).
        function esc(s,    out, i, c) {
            gsub(/\\/, "\\\\", s)
            gsub(/"/, "\\\"", s)
            gsub(/\t/, "\\t", s)
            gsub(/\r/, "", s)
            return s
        }
        function row_json(    i, out) {
            out = "["
            for (i = 1; i <= NF; i++) {
                if (i > 1)
                    out = out ","
                out = out "\"" esc($i) "\""
            }
            return out "]"
        }
        NR == 1 {
            printf "{\"columns\":%s,\"rows\":[", row_json()
            next
        }
        {
            if (NR > 2)
                printf ","
            printf "%s", row_json()
        }
        END { printf "]}" }
        ' "$csv"
    done
    printf '}}\n'
} > "$out"

echo "OK: wrote $out ($(wc -c < "$out") bytes from $# CSVs)"
