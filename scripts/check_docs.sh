#!/usr/bin/env bash
# Docs integrity gate.
#
# Usage: check_docs.sh  (from the repository root)
#
# Fails (non-zero exit) on:
#   1. broken intra-repo markdown links in docs/*.md, ROADMAP.md, and
#      CHANGES.md — a [text](target) whose target, resolved relative
#      to the containing file, does not exist (http(s)/mailto links
#      and pure #anchors are skipped), and
#   2. repo paths named in backticks in docs/ARCHITECTURE.md (the
#      layer map's `src/...` references) that no longer exist — so a
#      rename or deletion cannot silently strand the documentation.
#
# Pure bash+grep+awk: CI runners get nothing beyond the baked-in
# toolchain.
set -euo pipefail

fail=0

# --- 1. intra-repo markdown links ------------------------------------
for doc in docs/*.md ROADMAP.md CHANGES.md; do
    [ -f "$doc" ] || continue
    dir="$(dirname "$doc")"
    # Extract every (target) of a [text](target) pair, one per line.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}" # drop any anchor suffix
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "FAIL: $doc links to missing target '$target'" >&2
            fail=1
        fi
    done < <(grep -oE '\[[^][]*\]\([^()[:space:]]+\)' "$doc" |
        sed -E 's/^\[[^][]*\]\(([^()]+)\)$/\1/')
done

# --- 2. repo paths named in the architecture doc ---------------------
arch="docs/ARCHITECTURE.md"
if [ -f "$arch" ]; then
    while IFS= read -r path; do
        if [ ! -e "$path" ]; then
            echo "FAIL: $arch names missing path '$path'" >&2
            fail=1
        fi
    done < <(grep -oE '`(src|tests|bench|examples|scripts)/[A-Za-z0-9_./-]+`' \
        "$arch" | tr -d '\`' | sort -u)
else
    echo "FAIL: $arch is missing" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "OK: docs links and architecture paths all resolve"
