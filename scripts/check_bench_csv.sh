#!/usr/bin/env bash
# Perf-smoke sanity gate for bench CSVs.
#
# Usage: check_bench_csv.sh <csv-file> <min-data-rows>
#
# Fails (non-zero exit) when the CSV is missing, has an empty or
# single-column header, has fewer data rows than expected, or has a
# row whose column count disagrees with the header — the shapes a
# crashed or truncated bench binary leaves behind. Values are not
# compared against thresholds: wall-clock numbers are hardware-bound
# and belong in the uploaded artifacts, not in a gate.
set -euo pipefail

if [ "$#" -ne 2 ]; then
    echo "usage: $0 <csv-file> <min-data-rows>" >&2
    exit 2
fi

csv="$1"
min_rows="$2"

if [ ! -s "$csv" ]; then
    echo "FAIL: $csv is missing or empty" >&2
    exit 1
fi

awk -v min_rows="$min_rows" -v csv="$csv" -F',' '
NR == 1 {
    header_cols = NF
    if (header_cols < 2) {
        printf "FAIL: %s header has %d column(s); expected >= 2\n", \
               csv, header_cols > "/dev/stderr"
        failed = 1
        exit 1
    }
    next
}
{
    if (NF != header_cols) {
        printf "FAIL: %s row %d has %d column(s); header has %d\n", \
               csv, NR, NF, header_cols > "/dev/stderr"
        failed = 1
        exit 1
    }
    rows++
}
END {
    if (failed)
        exit 1
    if (rows < min_rows) {
        printf "FAIL: %s has %d data row(s); expected >= %d\n", \
               csv, rows, min_rows > "/dev/stderr"
        exit 1
    }
    printf "OK: %s (%d rows x %d cols)\n", csv, rows, header_cols
}' "$csv"
